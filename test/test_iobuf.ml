open Iolite_core
module Mem = Iolite_mem

let mk () =
  let sys = Iosys.create ~capacity:(32 * 1024 * 1024) () in
  let app = Iosys.new_domain sys ~name:"app" in
  let pool =
    Iobuf.Pool.create sys ~name:"test" ~acl:(Mem.Vm.Only (Mem.Pdomain.Set.singleton app))
  in
  (sys, app, pool)

let alloc_str pool producer s =
  Iobuf.Agg.of_string pool ~producer s

let agg_str agg =
  (* Uncharged readback for assertions. *)
  let buf = Buffer.create 16 in
  Iobuf.Agg.iter_slices agg (fun sl ->
      let data, off = Iobuf.Slice.view sl in
      Buffer.add_subbytes buf data off (Iobuf.Slice.len sl));
  Buffer.contents buf

let test_roundtrip () =
  let _, app, pool = mk () in
  let a = alloc_str pool app "hello, world" in
  Alcotest.(check string) "contents" "hello, world" (agg_str a);
  Alcotest.(check int) "length" 12 (Iobuf.Agg.length a);
  Iobuf.Agg.free a

let test_empty () =
  let _, app, pool = mk () in
  let a = alloc_str pool app "" in
  Alcotest.(check int) "empty length" 0 (Iobuf.Agg.length a);
  Alcotest.(check int) "no slices" 0 (Iobuf.Agg.num_slices a);
  Iobuf.Agg.free a

let test_immutability () =
  let _, app, pool = mk () in
  let b = Iobuf.Pool.alloc pool ~producer:app 10 in
  Iobuf.Buffer.blit_string b ~src:"0123456789" ~src_off:0 ~dst_off:0 ~len:10;
  Iobuf.Buffer.seal b;
  Alcotest.check_raises "write after seal" Iobuf.Buffer.Immutable (fun () ->
      Iobuf.Buffer.blit_string b ~src:"x" ~src_off:0 ~dst_off:0 ~len:1);
  Alcotest.check_raises "fill after seal" Iobuf.Buffer.Immutable (fun () ->
      Iobuf.Buffer.fill_gen b (fun _ -> 'x'));
  Iobuf.Buffer.decr_ref b

let test_concat () =
  let _, app, pool = mk () in
  let a = alloc_str pool app "foo" in
  let b = alloc_str pool app "bar" in
  let c = Iobuf.Agg.concat a b in
  Alcotest.(check string) "concatenated" "foobar" (agg_str c);
  Alcotest.(check string) "a unchanged" "foo" (agg_str a);
  Iobuf.Agg.free a;
  Iobuf.Agg.free b;
  (* c still holds references; contents must survive its inputs. *)
  Alcotest.(check string) "c survives inputs" "foobar" (agg_str c);
  Iobuf.Agg.free c

let test_sub_and_split () =
  let _, app, pool = mk () in
  let a = alloc_str pool app "abcdefghij" in
  let mid = Iobuf.Agg.sub a ~off:3 ~len:4 in
  Alcotest.(check string) "sub" "defg" (agg_str mid);
  let l, r = Iobuf.Agg.split a ~at:6 in
  Alcotest.(check string) "left" "abcdef" (agg_str l);
  Alcotest.(check string) "right" "ghij" (agg_str r);
  List.iter Iobuf.Agg.free [ a; mid; l; r ]

let test_sub_invalid () =
  let _, app, pool = mk () in
  let a = alloc_str pool app "abc" in
  Alcotest.check_raises "out of range" (Invalid_argument "Agg.sub: range")
    (fun () -> ignore (Iobuf.Agg.sub a ~off:1 ~len:3));
  Iobuf.Agg.free a

let test_get () =
  let _, app, pool = mk () in
  let a = alloc_str pool app "xy" in
  let b = alloc_str pool app "z" in
  let c = Iobuf.Agg.concat a b in
  Alcotest.(check char) "first" 'x' (Iobuf.Agg.get c 0);
  Alcotest.(check char) "cross slice" 'z' (Iobuf.Agg.get c 2);
  List.iter Iobuf.Agg.free [ a; b; c ]

let test_use_after_free () =
  let _, app, pool = mk () in
  let a = alloc_str pool app "abc" in
  Iobuf.Agg.free a;
  Alcotest.check_raises "length after free" Iobuf.Agg.Use_after_free (fun () ->
      ignore (Iobuf.Agg.length a));
  Alcotest.check_raises "double free" Iobuf.Agg.Use_after_free (fun () ->
      Iobuf.Agg.free a)

let test_refcounting_returns_chunks () =
  let _, app, pool = mk () in
  let aggs = List.init 8 (fun i -> alloc_str pool app (String.make 1000 (Char.chr (65 + i)))) in
  Alcotest.(check int) "one chunk in use" 1 (Iobuf.Pool.chunk_count pool);
  List.iter Iobuf.Agg.free aggs;
  (* All buffers dead: the chunk is recycled in place and reusable. *)
  let b = Iobuf.Pool.alloc pool ~producer:app 64 in
  Alcotest.(check int) "no new chunk" 1 (Iobuf.Pool.chunk_count pool);
  Iobuf.Buffer.seal b;
  Iobuf.Buffer.decr_ref b

let test_generation_changes_on_reuse () =
  let _, app, pool = mk () in
  let a = alloc_str pool app (String.make 100 'a') in
  let uid_a =
    match Iobuf.Agg.slices a with
    | [ s ] -> fst (Iobuf.Slice.uid s)
    | _ -> Alcotest.fail "expected one slice"
  in
  Iobuf.Agg.free a;
  let b = alloc_str pool app (String.make 100 'b') in
  let uid_b =
    match Iobuf.Agg.slices b with
    | [ s ] -> fst (Iobuf.Slice.uid s)
    | _ -> Alcotest.fail "expected one slice"
  in
  Alcotest.(check int) "same chunk" uid_a.Iobuf.Buffer.chunk uid_b.Iobuf.Buffer.chunk;
  Alcotest.(check int) "same offset" uid_a.Iobuf.Buffer.offset uid_b.Iobuf.Buffer.offset;
  Alcotest.(check bool) "different generation" true
    (uid_a.Iobuf.Buffer.generation <> uid_b.Iobuf.Buffer.generation);
  Iobuf.Agg.free b

let test_large_string_spans_chunks () =
  let _, app, pool = mk () in
  let n = Iobuf.Pool.max_alloc + 1234 in
  let s = String.init n (fun i -> Char.chr (i mod 251)) in
  let a = alloc_str pool app s in
  Alcotest.(check int) "length" n (Iobuf.Agg.length a);
  Alcotest.(check int) "two slices" 2 (Iobuf.Agg.num_slices a);
  Alcotest.(check string) "content preserved" s (agg_str a);
  Iobuf.Agg.free a

let test_alloc_bounds () =
  let _, app, pool = mk () in
  Alcotest.(check bool) "zero size rejected" true
    (match Iobuf.Pool.alloc pool ~producer:app 0 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "oversize rejected" true
    (match Iobuf.Pool.alloc pool ~producer:app (Iobuf.Pool.max_alloc + 1) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_acl_rejected_producer () =
  let sys, _, _ = mk () in
  let outsider = Iosys.new_domain sys ~name:"outsider" in
  let member = Iosys.new_domain sys ~name:"member" in
  let pool =
    Iobuf.Pool.create sys ~name:"private" ~acl:(Mem.Vm.Only (Mem.Pdomain.Set.singleton member))
  in
  Alcotest.(check bool) "outsider cannot produce" true
    (match Iobuf.Pool.alloc pool ~producer:outsider 10 with
    | _ -> false
    | exception Mem.Vm.Protection_fault _ -> true)

let test_copy_accounting () =
  let sys, app, pool = mk () in
  let a = alloc_str pool app (String.make 500 'x') in
  let before = Iolite_obs.Metrics.get (Iosys.metrics sys) "bytes.copied" in
  let s = Iobuf.Agg.to_string sys a in
  let after = Iolite_obs.Metrics.get (Iosys.metrics sys) "bytes.copied" in
  Alcotest.(check int) "copy charged" 500 (after - before);
  Alcotest.(check int) "correct data" 500 (String.length s);
  Iobuf.Agg.free a

let test_fill_accounting () =
  let sys, app, pool = mk () in
  let before = Iolite_obs.Metrics.get (Iosys.metrics sys) "bytes.filled" in
  let a = alloc_str pool app (String.make 300 'x') in
  let after = Iolite_obs.Metrics.get (Iosys.metrics sys) "bytes.filled" in
  Alcotest.(check int) "fill charged once" 300 (after - before);
  Iobuf.Agg.free a

let test_transfer_maps_once () =
  let sys, app, pool = mk () in
  let reader = Iosys.new_domain sys ~name:"reader" in
  let pool2 =
    Iobuf.Pool.create sys ~name:"shared"
      ~acl:(Mem.Vm.Only (Mem.Pdomain.Set.of_list [ app; reader ]))
  in
  ignore pool;
  let a = Iobuf.Agg.of_string pool2 ~producer:app "payload" in
  let maps () =
    Iolite_obs.Metrics.get (Mem.Vm.metrics (Iosys.vm sys)) "vm.map_read"
  in
  let m0 = maps () in
  let recv = Transfer.send sys a ~to_:reader in
  let m1 = maps () in
  Alcotest.(check bool) "first transfer maps" true (m1 > m0);
  Transfer.check_readable sys reader recv;
  Alcotest.(check string) "receiver sees data" "payload" (agg_str recv);
  Iobuf.Agg.free recv;
  let again = Transfer.send sys a ~to_:reader in
  let m2 = maps () in
  Alcotest.(check int) "warm transfer costs no maps" m1 m2;
  Iobuf.Agg.free again;
  Iobuf.Agg.free a

let test_transfer_acl_fault () =
  let sys, app, pool = mk () in
  let stranger = Iosys.new_domain sys ~name:"stranger" in
  let a = Iobuf.Agg.of_string pool ~producer:app "secret" in
  Alcotest.(check bool) "stranger rejected" true
    (match Transfer.send sys a ~to_:stranger with
    | _ -> false
    | exception Mem.Vm.Protection_fault _ -> true);
  Iobuf.Agg.free a

let test_warm_recycling_no_vm_ops () =
  (* The fbufs property: steady-state alloc/transfer/free on a stream
     performs no VM map operations after warmup. *)
  let sys, app, pool = mk () in
  let reader = Iosys.new_domain sys ~name:"reader" in
  let pool =
    ignore pool;
    Iobuf.Pool.create sys ~name:"stream"
      ~acl:(Mem.Vm.Only (Mem.Pdomain.Set.of_list [ app; reader ]))
  in
  let counters = Mem.Vm.metrics (Iosys.vm sys) in
  let round () =
    let a = Iobuf.Agg.of_string pool ~producer:app (String.make 4096 'd') in
    let r = Transfer.send sys a ~to_:reader in
    Iobuf.Agg.free a;
    Iobuf.Agg.free r
  in
  round ();
  round ();
  let maps_before = Iolite_obs.Metrics.get counters "vm.map_read" in
  for _ = 1 to 50 do
    round ()
  done;
  let maps_after = Iolite_obs.Metrics.get counters "vm.map_read" in
  Alcotest.(check int) "zero maps in steady state" maps_before maps_after

let test_try_overwrite_unshared () =
  let sys, app, pool = mk () in
  let a = alloc_str pool app "immutable data here!" in
  Alcotest.(check bool) "unshared overwrite succeeds" true
    (Iobuf.Agg.try_overwrite sys a ~off:10 "DATA");
  Alcotest.(check string) "bytes changed" "immutable DATA here!" (agg_str a);
  Iobuf.Agg.free a

let test_try_overwrite_shared_refused () =
  let sys, app, pool = mk () in
  let a = alloc_str pool app "shared contents" in
  let d = Iobuf.Agg.dup a in
  Alcotest.(check bool) "shared overwrite refused" false
    (Iobuf.Agg.try_overwrite sys a ~off:0 "X");
  Alcotest.(check string) "unchanged" "shared contents" (agg_str a);
  Iobuf.Agg.free d;
  (* Once the other reference is gone, modification is permitted. *)
  Alcotest.(check bool) "exclusive again" true
    (Iobuf.Agg.try_overwrite sys a ~off:0 "X");
  Alcotest.(check string) "now changed" "Xhared contents" (agg_str a);
  Iobuf.Agg.free a

let test_try_overwrite_bumps_generation () =
  let sys, app, pool = mk () in
  let cache = Iolite_net.Cksum.Cache.create () in
  let a = alloc_str pool app (String.make 2048 'a') in
  let sum_before, _ = Iolite_net.Cksum.Cache.agg_sum cache a in
  Alcotest.(check bool) "overwrite ok" true
    (Iobuf.Agg.try_overwrite sys a ~off:0 (String.make 2048 'b'));
  let sum_after, computed = Iolite_net.Cksum.Cache.agg_sum cache a in
  Alcotest.(check bool) "identity changed: no stale cache hit" true
    (computed = 2048);
  Alcotest.(check bool) "checksum reflects new data" true
    (sum_after <> sum_before);
  Alcotest.(check int) "matches fresh computation"
    (Iolite_net.Cksum.of_agg a) sum_after;
  Iobuf.Agg.free a

let test_try_overwrite_partial_sharing () =
  (* Only part of the aggregate is shared: overwriting the shared part
     fails, the exclusive part succeeds. *)
  let sys, app, pool = mk () in
  let shared = alloc_str pool app "SHARED" in
  let private_ = alloc_str pool app "private" in
  let both = Iobuf.Agg.concat shared private_ in
  Iobuf.Agg.free private_;
  (* [shared]'s buffer has 2 refs (shared + both); private has 1 (both). *)
  Alcotest.(check bool) "shared half refused" false
    (Iobuf.Agg.try_overwrite sys both ~off:0 "x");
  Alcotest.(check bool) "private half allowed" true
    (Iobuf.Agg.try_overwrite sys both ~off:6 "PRIVATE");
  Alcotest.(check string) "result" "SHAREDPRIVATE" (agg_str both);
  Iobuf.Agg.free shared;
  Iobuf.Agg.free both

let test_overwrite_structural_sharing () =
  (* Rope subtrees are shared structurally by concat/sub (not only by
     dup): a buffer reachable from a shared subtree is not exclusively
     held, so try_overwrite must refuse until the sharer is freed. *)
  let sys, app, pool = mk () in
  let a = alloc_str pool app "aaaaaaaa" in
  let b = alloc_str pool app "bbbbbbbb" in
  let c = Iobuf.Agg.concat a b in
  (* c shares a's and b's rope nodes. *)
  Alcotest.(check bool) "left half shared via a" false
    (Iobuf.Agg.try_overwrite sys c ~off:0 "XXXX");
  Alcotest.(check bool) "right half shared via b" false
    (Iobuf.Agg.try_overwrite sys c ~off:8 "YYYY");
  Alcotest.(check bool) "a's leaf shared via c" false
    (Iobuf.Agg.try_overwrite sys a ~off:0 "XXXX");
  Iobuf.Agg.free a;
  Alcotest.(check bool) "left half exclusive after a freed" true
    (Iobuf.Agg.try_overwrite sys c ~off:0 "XXXX");
  Alcotest.(check bool) "right half still shared" false
    (Iobuf.Agg.try_overwrite sys c ~off:8 "YYYY");
  Iobuf.Agg.free b;
  Alcotest.(check bool) "right half exclusive after b freed" true
    (Iobuf.Agg.try_overwrite sys c ~off:8 "YYYY");
  Alcotest.(check string) "contents" "XXXXaaaaYYYYbbbb" (agg_str c);
  (* A full-prefix sub shares the left subtree itself. *)
  let pre = Iobuf.Agg.sub c ~off:0 ~len:8 in
  Alcotest.(check bool) "prefix sub shares subtree" false
    (Iobuf.Agg.try_overwrite sys c ~off:0 "ZZZZ");
  (* A mid-range sub builds fresh leaves over the same buffers; the
     buffer refcounts still reveal the sharing. *)
  let mid = Iobuf.Agg.sub c ~off:4 ~len:8 in
  Alcotest.(check bool) "mid sub blocks via buffer refs" false
    (Iobuf.Agg.try_overwrite sys c ~off:10 "Q");
  Iobuf.Agg.free pre;
  Iobuf.Agg.free mid;
  Alcotest.(check bool) "exclusive again" true
    (Iobuf.Agg.try_overwrite sys c ~off:0 "ZZZZ");
  Iobuf.Agg.free c

let test_deep_append () =
  (* The stdiol/pipe/Flash pattern: many small appends. The rope must
     keep content identical to a string model and report num_slices in
     O(1). *)
  let _, app, pool = mk () in
  let model = Buffer.create 65536 in
  let piece_of i = String.make 32 (Char.chr (97 + (i mod 26))) in
  let acc = ref (Iobuf.Agg.empty ()) in
  for i = 1 to 1024 do
    let p = alloc_str pool app (piece_of i) in
    let next = Iobuf.Agg.concat !acc p in
    Iobuf.Agg.free !acc;
    Iobuf.Agg.free p;
    acc := next;
    Buffer.add_string model (piece_of i)
  done;
  Alcotest.(check int) "1024 slices" 1024 (Iobuf.Agg.num_slices !acc);
  Alcotest.(check int) "length" (1024 * 32) (Iobuf.Agg.length !acc);
  Alcotest.(check string) "content matches model" (Buffer.contents model)
    (agg_str !acc);
  (* O(log n) indexing agrees with the model at random spots. *)
  let rng = Iolite_util.Rng.create 7L in
  for _ = 1 to 200 do
    let i = Iolite_util.Rng.int rng (1024 * 32) in
    Alcotest.(check char) "get" (Buffer.nth model i) (Iobuf.Agg.get !acc i)
  done;
  let l, r = Iobuf.Agg.split !acc ~at:10000 in
  Alcotest.(check string) "split left"
    (String.sub (Buffer.contents model) 0 10000)
    (agg_str l);
  Alcotest.(check string) "split right"
    (String.sub (Buffer.contents model) 10000 ((1024 * 32) - 10000))
    (agg_str r);
  List.iter Iobuf.Agg.free [ !acc; l; r ]

(* Model-based randomized sequences: every live aggregate is paired with
   a plain-string model; random concat/sub/split/dup/free/overwrite
   plumbing must keep aggregate contents equal to the model, and freeing
   everything must return all chunks to the pool. Deterministically
   seeded via Iolite_util.Rng (SplitMix64). *)
let model_sequence ~seed ~steps () =
  let sys, app, pool = mk () in
  let rng = Iolite_util.Rng.create seed in
  let rand_string n =
    String.init n (fun _ -> Char.chr (97 + Iolite_util.Rng.int rng 26))
  in
  let live = ref [] in
  let add agg model = live := (agg, model) :: !live in
  let pick () = List.nth !live (Iolite_util.Rng.int rng (List.length !live)) in
  for _ = 1 to 4 do
    let s = rand_string (1 + Iolite_util.Rng.int rng 200) in
    add (alloc_str pool app s) s
  done;
  for _step = 1 to steps do
    match Iolite_util.Rng.int rng 7 with
    | 0 ->
      let a, sa = pick () and b, sb = pick () in
      if String.length sa + String.length sb <= 65536 then
        add (Iobuf.Agg.concat a b) (sa ^ sb)
    | 1 ->
      let a, sa = pick () in
      let n = String.length sa in
      let off = Iolite_util.Rng.int rng (n + 1) in
      let len = Iolite_util.Rng.int rng (n - off + 1) in
      add (Iobuf.Agg.sub a ~off ~len) (String.sub sa off len)
    | 2 ->
      let a, sa = pick () in
      let n = String.length sa in
      let at = Iolite_util.Rng.int rng (n + 1) in
      let l, r = Iobuf.Agg.split a ~at in
      add l (String.sub sa 0 at);
      add r (String.sub sa at (n - at))
    | 3 ->
      let a, sa = pick () in
      add (Iobuf.Agg.dup a) sa
    | 4 ->
      if List.length !live > 2 then begin
        let victim, _ = pick () in
        live := List.filter (fun (a, _) -> not (a == victim)) !live;
        Iobuf.Agg.free victim
      end
    | 5 ->
      let a, sa = pick () in
      let n = String.length sa in
      if n > 0 then begin
        let off = Iolite_util.Rng.int rng n in
        let len = 1 + Iolite_util.Rng.int rng (n - off) in
        let data = rand_string len in
        if Iobuf.Agg.try_overwrite sys a ~off data then begin
          (* Success promises exclusivity: only this aggregate's model
             may change. *)
          let nm = Bytes.of_string sa in
          Bytes.blit_string data 0 nm off len;
          let nm = Bytes.to_string nm in
          live :=
            List.map (fun (x, sx) -> if x == a then (x, nm) else (x, sx)) !live
        end
      end
    | _ ->
      let a, sa = pick () in
      Alcotest.(check int) "length matches model" (String.length sa)
        (Iobuf.Agg.length a);
      Alcotest.(check string) "content matches model" sa (agg_str a);
      if String.length sa > 0 then begin
        let i = Iolite_util.Rng.int rng (String.length sa) in
        Alcotest.(check char) "get matches model" sa.[i] (Iobuf.Agg.get a i)
      end
  done;
  List.iter
    (fun (a, sa) -> Alcotest.(check string) "final content" sa (agg_str a))
    !live;
  List.iter (fun (a, _) -> Iobuf.Agg.free a) !live;
  (* Everything freed: all node/buffer refcounts must have drained, so a
     fresh allocation reuses the existing chunks. *)
  let chunks = Iobuf.Pool.chunk_count pool in
  let probe = Iobuf.Pool.alloc pool ~producer:app 16 in
  Iobuf.Buffer.seal probe;
  Iobuf.Buffer.decr_ref probe;
  Alcotest.(check int) "no leaked chunks" chunks (Iobuf.Pool.chunk_count pool)

(* ------------------------------------------------------------------ *)
(* Property tests                                                      *)
(* ------------------------------------------------------------------ *)

let prop_roundtrip =
  QCheck.Test.make ~name:"agg of_string/readback identity" ~count:200
    QCheck.(string_of_size Gen.(0 -- 2000))
    (fun s ->
      let _, app, pool = mk () in
      let a = alloc_str pool app s in
      let ok = String.equal s (agg_str a) && Iobuf.Agg.length a = String.length s in
      Iobuf.Agg.free a;
      ok)

let prop_concat_assoc =
  QCheck.Test.make ~name:"concat associativity (content)" ~count:100
    QCheck.(triple (string_of_size Gen.(0 -- 200)) (string_of_size Gen.(0 -- 200)) (string_of_size Gen.(0 -- 200)))
    (fun (x, y, z) ->
      let _, app, pool = mk () in
      let ax = alloc_str pool app x
      and ay = alloc_str pool app y
      and az = alloc_str pool app z in
      let xy = Iobuf.Agg.concat ax ay in
      let xy_z = Iobuf.Agg.concat xy az in
      let yz = Iobuf.Agg.concat ay az in
      let x_yz = Iobuf.Agg.concat ax yz in
      let ok = Iobuf.Agg.content_equal xy_z x_yz in
      List.iter Iobuf.Agg.free [ ax; ay; az; xy; xy_z; yz; x_yz ];
      ok)

let prop_split_concat_inverse =
  QCheck.Test.make ~name:"split then concat restores content" ~count:200
    QCheck.(pair (string_of_size Gen.(1 -- 500)) small_nat)
    (fun (s, k) ->
      let _, app, pool = mk () in
      let at = k mod (String.length s + 1) in
      let a = alloc_str pool app s in
      let l, r = Iobuf.Agg.split a ~at in
      let back = Iobuf.Agg.concat l r in
      let ok = Iobuf.Agg.content_equal a back in
      List.iter Iobuf.Agg.free [ a; l; r; back ];
      ok)

let prop_sub_matches_string_sub =
  QCheck.Test.make ~name:"sub matches String.sub" ~count:200
    QCheck.(triple (string_of_size Gen.(1 -- 500)) small_nat small_nat)
    (fun (s, a, b) ->
      let n = String.length s in
      let off = a mod n in
      let len = b mod (n - off + 1) in
      let _, app, pool = mk () in
      let agg = alloc_str pool app s in
      let sub = Iobuf.Agg.sub agg ~off ~len in
      let ok = String.equal (String.sub s off len) (agg_str sub) in
      Iobuf.Agg.free agg;
      Iobuf.Agg.free sub;
      ok)

let prop_refcount_balanced =
  (* After arbitrary agg plumbing and freeing everything, the pool's
     chunks must all be reusable (no leaked references). *)
  QCheck.Test.make ~name:"refcounts balance after free" ~count:100
    QCheck.(list_of_size Gen.(1 -- 10) (string_of_size Gen.(1 -- 300)))
    (fun strings ->
      let _, app, pool = mk () in
      let aggs = List.map (alloc_str pool app) strings in
      let cat = Iobuf.Agg.concat_list aggs in
      let half = Iobuf.Agg.sub cat ~off:0 ~len:(Iobuf.Agg.length cat / 2) in
      List.iter Iobuf.Agg.free aggs;
      Iobuf.Agg.free cat;
      Iobuf.Agg.free half;
      (* Every buffer is dead; a fresh alloc must not need a new chunk
         beyond the ones already allocated. *)
      let chunks_before = Iobuf.Pool.chunk_count pool in
      let probe = Iobuf.Pool.alloc pool ~producer:app 8 in
      Iobuf.Buffer.seal probe;
      Iobuf.Buffer.decr_ref probe;
      Iobuf.Pool.chunk_count pool = chunks_before)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_roundtrip;
      prop_concat_assoc;
      prop_split_concat_inverse;
      prop_sub_matches_string_sub;
      prop_refcount_balanced;
    ]

let suites =
  [
    ( "core.iobuf",
      [
        Alcotest.test_case "roundtrip" `Quick test_roundtrip;
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "immutability" `Quick test_immutability;
        Alcotest.test_case "concat" `Quick test_concat;
        Alcotest.test_case "sub and split" `Quick test_sub_and_split;
        Alcotest.test_case "sub invalid" `Quick test_sub_invalid;
        Alcotest.test_case "get" `Quick test_get;
        Alcotest.test_case "use after free" `Quick test_use_after_free;
        Alcotest.test_case "refcount returns chunks" `Quick test_refcounting_returns_chunks;
        Alcotest.test_case "generation on reuse" `Quick test_generation_changes_on_reuse;
        Alcotest.test_case "spans chunks" `Quick test_large_string_spans_chunks;
        Alcotest.test_case "alloc bounds" `Quick test_alloc_bounds;
        Alcotest.test_case "acl producer" `Quick test_acl_rejected_producer;
        Alcotest.test_case "copy accounting" `Quick test_copy_accounting;
        Alcotest.test_case "fill accounting" `Quick test_fill_accounting;
        Alcotest.test_case "overwrite unshared" `Quick test_try_overwrite_unshared;
        Alcotest.test_case "overwrite shared refused" `Quick test_try_overwrite_shared_refused;
        Alcotest.test_case "overwrite bumps generation" `Quick test_try_overwrite_bumps_generation;
        Alcotest.test_case "overwrite partial sharing" `Quick test_try_overwrite_partial_sharing;
        Alcotest.test_case "overwrite structural sharing" `Quick test_overwrite_structural_sharing;
        Alcotest.test_case "deep append" `Quick test_deep_append;
        Alcotest.test_case "model sequence (seed 1)" `Quick (model_sequence ~seed:1L ~steps:400);
        Alcotest.test_case "model sequence (seed 2)" `Quick (model_sequence ~seed:2L ~steps:400);
        Alcotest.test_case "model sequence (seed 3)" `Quick (model_sequence ~seed:3L ~steps:400);
      ] );
    ( "core.transfer",
      [
        Alcotest.test_case "maps once" `Quick test_transfer_maps_once;
        Alcotest.test_case "acl fault" `Quick test_transfer_acl_fault;
        Alcotest.test_case "warm recycling" `Quick test_warm_recycling_no_vm_ops;
      ] );
    ("core.iobuf.props", qcheck_cases);
  ]
