open Iolite_sim
module Proc = Engine.Proc

let test_heap_order () =
  let h = Heap.create () in
  let r = Iolite_util.Rng.create 3L in
  for i = 0 to 999 do
    Heap.push h ~time:(Iolite_util.Rng.float r 100.0) ~seq:i i
  done;
  let last = ref neg_infinity in
  let n = ref 0 in
  let continue = ref true in
  while !continue do
    match Heap.pop h with
    | None -> continue := false
    | Some (t, _, _) ->
      Alcotest.(check bool) "nondecreasing" true (t >= !last);
      last := t;
      incr n
  done;
  Alcotest.(check int) "all popped" 1000 !n

let test_heap_fifo_ties () =
  let h = Heap.create () in
  for i = 0 to 9 do
    Heap.push h ~time:1.0 ~seq:i i
  done;
  for i = 0 to 9 do
    match Heap.pop h with
    | Some (_, _, v) -> Alcotest.(check int) "fifo at equal time" i v
    | None -> Alcotest.fail "heap empty early"
  done

let test_sleep_advances_clock () =
  let e = Engine.create () in
  let seen = ref [] in
  Engine.spawn e (fun () ->
      seen := (Proc.now (), "start") :: !seen;
      Proc.sleep 1.5;
      seen := (Proc.now (), "mid") :: !seen;
      Proc.sleep 2.5;
      seen := (Proc.now (), "end") :: !seen);
  Engine.run e;
  Alcotest.(check (list (pair (float 1e-9) string)))
    "timeline"
    [ (0.0, "start"); (1.5, "mid"); (4.0, "end") ]
    (List.rev !seen);
  Alcotest.(check (float 1e-9)) "final clock" 4.0 (Engine.now e)

let test_two_processes_interleave () =
  let e = Engine.create () in
  let log = ref [] in
  let proc name delay count () =
    for i = 1 to count do
      Proc.sleep delay;
      log := Printf.sprintf "%s%d@%.1f" name i (Proc.now ()) :: !log
    done
  in
  Engine.spawn e (proc "a" 1.0 3);
  Engine.spawn e (proc "b" 1.5 2);
  Engine.run e;
  Alcotest.(check (list string))
    "interleaving"
    (* At the 3.0 tie, b's wakeup was scheduled (at t=1.5) before a's (at
       t=2.0), so FIFO tie-breaking runs b2 first. *)
    [ "a1@1.0"; "b1@1.5"; "a2@2.0"; "b2@3.0"; "a3@3.0" ]
    (List.rev !log)

let test_run_until () =
  let e = Engine.create () in
  let count = ref 0 in
  Engine.spawn e (fun () ->
      for _ = 1 to 100 do
        Proc.sleep 1.0;
        incr count
      done);
  Engine.run ~until:10.25 e;
  Alcotest.(check int) "events before deadline" 10 !count;
  Alcotest.(check (float 1e-9)) "clock at deadline" 10.25 (Engine.now e);
  Engine.run e;
  Alcotest.(check int) "rest of events run" 100 !count

let test_spawn_within () =
  let e = Engine.create () in
  let result = ref 0.0 in
  Engine.spawn e (fun () ->
      Proc.sleep 2.0;
      Proc.spawn (fun () ->
          Proc.sleep 3.0;
          result := Proc.now ()));
  Engine.run e;
  Alcotest.(check (float 1e-9)) "child inherits clock" 5.0 !result

let test_negative_sleep_raises () =
  let e = Engine.create () in
  let raised = ref false in
  Engine.spawn e (fun () ->
      try Proc.sleep (-1.0) with Invalid_argument _ -> raised := true);
  Engine.run e;
  Alcotest.(check bool) "raised" true !raised

let test_semaphore_mutual_exclusion () =
  let e = Engine.create () in
  let sem = Sync.Semaphore.create 1 in
  let inside = ref 0 and max_inside = ref 0 in
  let worker () =
    Sync.Semaphore.with_acquired sem (fun () ->
        incr inside;
        max_inside := max !max_inside !inside;
        Proc.sleep 1.0;
        decr inside)
  in
  for _ = 1 to 5 do
    Engine.spawn e worker
  done;
  Engine.run e;
  Alcotest.(check int) "never two inside" 1 !max_inside;
  Alcotest.(check (float 1e-9)) "serialized" 5.0 (Engine.now e)

let test_semaphore_fifo () =
  let e = Engine.create () in
  let sem = Sync.Semaphore.create 0 in
  let order = ref [] in
  for i = 1 to 4 do
    Engine.spawn e (fun () ->
        Proc.sleep (float_of_int i *. 0.1);
        Sync.Semaphore.acquire sem;
        order := i :: !order)
  done;
  Engine.spawn e (fun () ->
      Proc.sleep 1.0;
      Sync.Semaphore.release ~n:4 sem);
  Engine.run e;
  Alcotest.(check (list int)) "fifo wakeup" [ 1; 2; 3; 4 ] (List.rev !order)

let test_semaphore_counted () =
  let e = Engine.create () in
  let sem = Sync.Semaphore.create 3 in
  let t_done = ref 0.0 in
  Engine.spawn e (fun () ->
      Sync.Semaphore.acquire ~n:2 sem;
      Proc.sleep 1.0;
      Sync.Semaphore.release ~n:2 sem);
  Engine.spawn e (fun () ->
      Proc.sleep 0.1;
      (* Needs 2 tokens but only 1 left; waits for the first release. *)
      Sync.Semaphore.acquire ~n:2 sem;
      t_done := Proc.now ());
  Engine.run e;
  Alcotest.(check (float 1e-9)) "waited for release" 1.0 !t_done

let test_condvar_broadcast () =
  let e = Engine.create () in
  let cv = Sync.Condvar.create () in
  let woke = ref 0 in
  for _ = 1 to 3 do
    Engine.spawn e (fun () ->
        Sync.Condvar.wait cv;
        incr woke)
  done;
  Engine.spawn e (fun () ->
      Proc.sleep 1.0;
      Sync.Condvar.broadcast cv);
  Engine.run e;
  Alcotest.(check int) "all woke" 3 !woke

let test_condvar_signal_one () =
  let e = Engine.create () in
  let cv = Sync.Condvar.create () in
  let woke = ref 0 in
  for _ = 1 to 3 do
    Engine.spawn e (fun () ->
        Sync.Condvar.wait cv;
        incr woke)
  done;
  Engine.spawn e (fun () ->
      Proc.sleep 1.0;
      Sync.Condvar.signal cv);
  Engine.run e;
  Alcotest.(check int) "one woke" 1 !woke;
  Alcotest.(check int) "two still waiting" 2 (Sync.Condvar.waiters cv)

let test_mailbox_roundtrip () =
  let e = Engine.create () in
  let mb = Sync.Mailbox.create () in
  let sum = ref 0 in
  Engine.spawn e (fun () ->
      for _ = 1 to 5 do
        sum := !sum + Sync.Mailbox.recv mb
      done);
  Engine.spawn e (fun () ->
      for i = 1 to 5 do
        Proc.sleep 0.5;
        Sync.Mailbox.send mb i
      done);
  Engine.run e;
  Alcotest.(check int) "received all" 15 !sum

let test_mailbox_buffered () =
  let e = Engine.create () in
  let mb = Sync.Mailbox.create () in
  let got = ref [] in
  Engine.spawn e (fun () ->
      Sync.Mailbox.send mb "x";
      Sync.Mailbox.send mb "y";
      Proc.sleep 1.0;
      let first = Sync.Mailbox.recv mb in
      let second = Sync.Mailbox.recv mb in
      got := [ first; second ]);
  Engine.run e;
  Alcotest.(check (list string)) "order preserved" [ "x"; "y" ] !got

let test_ivar () =
  let e = Engine.create () in
  let iv = Sync.Ivar.create () in
  let seen = ref 0 in
  for _ = 1 to 2 do
    Engine.spawn e (fun () -> seen := !seen + Sync.Ivar.read iv)
  done;
  Engine.spawn e (fun () ->
      Proc.sleep 2.0;
      Sync.Ivar.fill iv 21);
  Engine.run e;
  Alcotest.(check int) "both readers" 42 !seen;
  Alcotest.(check bool) "filled" true (Sync.Ivar.is_filled iv)

let test_determinism () =
  let run_once () =
    let e = Engine.create () in
    let log = Buffer.create 64 in
    let r = Iolite_util.Rng.create 99L in
    for i = 1 to 10 do
      Engine.spawn e (fun () ->
          Proc.sleep (Iolite_util.Rng.float r 10.0);
          Buffer.add_string log (Printf.sprintf "%d@%.6f;" i (Proc.now ())))
    done;
    Engine.run e;
    Buffer.contents log
  in
  Alcotest.(check string) "identical traces" (run_once ()) (run_once ())

let test_heap_cancel_tombstones () =
  let h = Heap.create () in
  let entries =
    List.init 10 (fun i -> Heap.push_entry h ~time:(float_of_int i) ~seq:i i)
  in
  Alcotest.(check int) "all live" 10 (Heap.size h);
  (* Cancel the three smallest and one in the middle. *)
  List.iteri
    (fun i e ->
      if i < 3 || i = 6 then
        Alcotest.(check bool) "cancel live entry" true (Heap.cancel h e))
    entries;
  Alcotest.(check int) "live after cancel" 6 (Heap.size h);
  Alcotest.(check int) "tombstones still resident" 10 (Heap.raw_size h);
  Alcotest.(check bool) "double cancel refused" false
    (Heap.cancel h (List.nth entries 0));
  (* peek skips the cancelled prefix without popping live work. *)
  Alcotest.(check (option (float 1e-9))) "peek skips tombstones" (Some 3.0)
    (Heap.peek_time h);
  let popped = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (_, _, v) ->
      popped := v :: !popped;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "only live popped" [ 3; 4; 5; 7; 8; 9 ]
    (List.rev !popped);
  Alcotest.(check bool) "cancel after pop refused" false
    (Heap.cancel h (List.nth entries 4))

(* ------------------------------------------------------------------ *)
(* Timer wheel                                                         *)
(* ------------------------------------------------------------------ *)

let test_twheel_basic_fire_order () =
  let w = Twheel.create ~tick:1.0 ~bits:2 ~levels:3 () in
  let fired = ref [] in
  let fire v = fired := v :: !fired in
  ignore (Twheel.add w ~tick:5 "a");
  ignore (Twheel.add w ~tick:3 "b");
  ignore (Twheel.add w ~tick:5 "c");
  ignore (Twheel.add w ~tick:40 "far");
  Alcotest.(check int) "pending" 4 (Twheel.size w);
  Alcotest.(check (option int)) "earliest bound below first expiry" (Some 3)
    (Twheel.next_due_tick w);
  Twheel.advance_to w 4 ~fire;
  Alcotest.(check (list string)) "only b so far" [ "b" ] (List.rev !fired);
  Twheel.advance_to w 10 ~fire;
  Alcotest.(check (list string))
    "ties fire in insertion order" [ "b"; "a"; "c" ] (List.rev !fired);
  Twheel.advance_to w 64 ~fire;
  Alcotest.(check (list string))
    "cross-frame timer cascades and fires" [ "b"; "a"; "c"; "far" ]
    (List.rev !fired);
  Alcotest.(check int) "empty" 0 (Twheel.size w)

let test_twheel_cancel () =
  let w = Twheel.create ~tick:1.0 ~bits:4 ~levels:2 () in
  let h1 = Twheel.add w ~tick:7 "x" in
  let h2 = Twheel.add w ~tick:7 "y" in
  Alcotest.(check bool) "cancel pending" true (Twheel.cancel w h1);
  Alcotest.(check bool) "double cancel refused" false (Twheel.cancel w h1);
  Alcotest.(check bool) "handle inactive" false (Twheel.is_active h1);
  let fired = ref [] in
  Twheel.advance_to w 20 ~fire:(fun v -> fired := v :: !fired);
  Alcotest.(check (list string)) "survivor fires" [ "y" ] !fired;
  Alcotest.(check bool) "cancel after fire refused" false (Twheel.cancel w h2)

let test_twheel_never_early () =
  (* A 1 ms wheel must round fractional deadlines up, never down. *)
  let w = Twheel.create () in
  Alcotest.(check int) "exact tick" 2 (Twheel.tick_of_time w 0.002);
  Alcotest.(check int) "fraction rounds up" 3 (Twheel.tick_of_time w 0.0021);
  Alcotest.(check int) "epsilon below stays put" 2
    (Twheel.tick_of_time w (0.002 -. 1e-12))

let test_twheel_reentrant_insert () =
  (* fire may insert timers at or before the cursor; they run before
     advance_to returns (the engine relies on this for zero-delay
     rescheduling). *)
  let w = Twheel.create ~tick:1.0 ~bits:2 ~levels:2 () in
  let fired = ref [] in
  let fire v =
    fired := v :: !fired;
    if v = "first" then ignore (Twheel.add w ~tick:0 "chained")
  in
  ignore (Twheel.add w ~tick:2 "first");
  Twheel.advance_to w 2 ~fire;
  Alcotest.(check (list string)) "chained timer fired within advance"
    [ "first"; "chained" ] (List.rev !fired)

(* Model test: the wheel against a sorted-list oracle. Tiny levels (4
   slots each) so short random delays constantly cross cascade frame
   boundaries; deltas beyond the horizon exercise top-level clamping. *)

type wop = W_add of int | W_cancel of int | W_advance of int

let wop_gen =
  let open QCheck.Gen in
  frequency
    [
      (5, map (fun d -> W_add d) (0 -- 100));
      (2, map (fun i -> W_cancel i) (0 -- 1000));
      (4, map (fun d -> W_advance d) (0 -- 20));
    ]

let prop_twheel_matches_oracle =
  QCheck.Test.make ~name:"timer wheel matches sorted-list oracle" ~count:400
    (QCheck.make
       QCheck.Gen.(list_size (1 -- 60) wop_gen)
       ~print:(fun ops ->
         String.concat ";"
           (List.map
              (function
                | W_add d -> Printf.sprintf "add+%d" d
                | W_cancel i -> Printf.sprintf "cancel#%d" i
                | W_advance d -> Printf.sprintf "adv+%d" d)
              ops)))
    (fun ops ->
      let w = Twheel.create ~tick:1.0 ~bits:2 ~levels:3 () in
      (* Oracle: live (expiry, seq, value) triples plus the handle, kept
         unsorted; expected fire order is (expiry, seq). *)
      let live = ref [] in
      let seq = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | W_add d ->
            let tick = Twheel.current_tick w + d in
            let h = Twheel.add w ~tick !seq in
            live := (tick, !seq, h) :: !live;
            incr seq
          | W_cancel i ->
            let n = List.length !live in
            if n > 0 then begin
              let tick, s, h = List.nth !live (i mod n) in
              if not (Twheel.cancel w h) then ok := false;
              live := List.filter (fun (_, s', _) -> s' <> s) !live;
              ignore tick
            end
          | W_advance d ->
            let target = Twheel.current_tick w + d in
            let fired = ref [] in
            Twheel.advance_to w target ~fire:(fun v -> fired := v :: !fired);
            let expected, rest =
              List.partition (fun (t, _, _) -> t <= target) !live
            in
            (* Exactly the due set fires — nothing early, nothing
               stranded — in nondecreasing tick order. (Same-tick
               timers inserted at different cursor positions may
               interleave either way: cascading merges their slot
               lists, so global FIFO only holds within one insertion
               point. The order is still deterministic.) *)
            let got = List.rev !fired in
            let tick_of s =
              match List.find_opt (fun (_, s', _) -> s' = s) expected with
              | Some (t, _, _) -> t
              | None -> -1 (* fired something not due: fail below *)
            in
            if
              List.sort compare got
              <> List.sort compare (List.map (fun (_, s, _) -> s) expected)
            then ok := false;
            let rec nondecreasing = function
              | a :: (b :: _ as tl) ->
                tick_of a <= tick_of b && nondecreasing tl
              | _ -> true
            in
            if not (nondecreasing got) then ok := false;
            live := rest)
        ops;
      if Twheel.size w <> List.length !live then ok := false;
      !ok)

(* ------------------------------------------------------------------ *)
(* Cancelable engine timers                                            *)
(* ------------------------------------------------------------------ *)

let test_engine_timer_quantized_never_early () =
  let e = Engine.create () (* wheel backend, 1 ms tick *) in
  let fired_at = ref (-1.0) in
  let tm =
    Engine.schedule_cancelable e 0.0012 (fun () -> fired_at := Engine.now e)
  in
  Alcotest.(check bool) "pending before run" true (Engine.timer_pending tm);
  Engine.run e;
  Alcotest.(check (float 1e-12)) "fired at the next tick boundary" 0.002
    !fired_at;
  Alcotest.(check bool) "not pending after fire" false (Engine.timer_pending tm)

let test_engine_timer_cancel () =
  let e = Engine.create () in
  let fired = ref [] in
  let t1 = Engine.schedule_cancelable e 0.5 (fun () -> fired := 1 :: !fired) in
  let _t2 = Engine.schedule_cancelable e 1.0 (fun () -> fired := 2 :: !fired) in
  Alcotest.(check int) "two pending" 2 (Engine.pending_timers e);
  Alcotest.(check bool) "cancel live" true (Engine.cancel_timer e t1);
  Alcotest.(check bool) "double cancel refused" false (Engine.cancel_timer e t1);
  Alcotest.(check int) "one pending" 1 (Engine.pending_timers e);
  Engine.run e;
  Alcotest.(check (list int)) "only survivor fired" [ 2 ] !fired;
  Alcotest.(check int) "none pending" 0 (Engine.pending_timers e)

let test_engine_timer_heap_backend () =
  let e = Engine.create ~timer_backend:`Heap () in
  let fired_at = ref (-1.0) in
  let t1 =
    Engine.schedule_cancelable e 0.0012 (fun () -> fired_at := Engine.now e)
  in
  let t2 = Engine.schedule_cancelable e 2.0 (fun () -> fired_at := -2.0) in
  ignore t1;
  Alcotest.(check bool) "cancel on heap backend" true (Engine.cancel_timer e t2);
  Engine.run e;
  Alcotest.(check (float 1e-12)) "heap timers fire at exact time" 0.0012
    !fired_at

let test_engine_timer_interleaves_with_sleeps () =
  (* Wheel timers and heap sleeps share one virtual clock; order must
     follow deadlines across the two backends. *)
  let e = Engine.create () in
  let log = ref [] in
  Engine.spawn e (fun () ->
      Proc.sleep 0.0015;
      log := "sleep" :: !log);
  ignore (Engine.schedule_cancelable e 0.001 (fun () -> log := "t1" :: !log));
  ignore (Engine.schedule_cancelable e 0.0021 (fun () -> log := "t3" :: !log));
  Engine.run e;
  Alcotest.(check (list string))
    "merged order" [ "t1"; "sleep"; "t3" ] (List.rev !log)

let suites =
  [
    ( "sim.heap",
      [
        Alcotest.test_case "order" `Quick test_heap_order;
        Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
        Alcotest.test_case "cancel tombstones" `Quick
          test_heap_cancel_tombstones;
      ] );
    ( "sim.twheel",
      [
        Alcotest.test_case "fire order + cascade" `Quick
          test_twheel_basic_fire_order;
        Alcotest.test_case "cancel" `Quick test_twheel_cancel;
        Alcotest.test_case "never early" `Quick test_twheel_never_early;
        Alcotest.test_case "re-entrant insert" `Quick
          test_twheel_reentrant_insert;
        QCheck_alcotest.to_alcotest prop_twheel_matches_oracle;
      ] );
    ( "sim.timer",
      [
        Alcotest.test_case "wheel quantizes up" `Quick
          test_engine_timer_quantized_never_early;
        Alcotest.test_case "cancel" `Quick test_engine_timer_cancel;
        Alcotest.test_case "heap backend exact" `Quick
          test_engine_timer_heap_backend;
        Alcotest.test_case "interleaves with sleeps" `Quick
          test_engine_timer_interleaves_with_sleeps;
      ] );
    ( "sim.engine",
      [
        Alcotest.test_case "sleep advances clock" `Quick test_sleep_advances_clock;
        Alcotest.test_case "interleaving" `Quick test_two_processes_interleave;
        Alcotest.test_case "run until" `Quick test_run_until;
        Alcotest.test_case "spawn within" `Quick test_spawn_within;
        Alcotest.test_case "negative sleep" `Quick test_negative_sleep_raises;
        Alcotest.test_case "determinism" `Quick test_determinism;
      ] );
    ( "sim.sync",
      [
        Alcotest.test_case "semaphore mutex" `Quick test_semaphore_mutual_exclusion;
        Alcotest.test_case "semaphore fifo" `Quick test_semaphore_fifo;
        Alcotest.test_case "semaphore counted" `Quick test_semaphore_counted;
        Alcotest.test_case "condvar broadcast" `Quick test_condvar_broadcast;
        Alcotest.test_case "condvar signal" `Quick test_condvar_signal_one;
        Alcotest.test_case "mailbox roundtrip" `Quick test_mailbox_roundtrip;
        Alcotest.test_case "mailbox buffered" `Quick test_mailbox_buffered;
        Alcotest.test_case "ivar" `Quick test_ivar;
      ] );
  ]
