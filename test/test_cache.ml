open Iolite_core
module Mem = Iolite_mem

let mk ?policy ?(capacity = 32 * 1024 * 1024) () =
  let sys = Iosys.create ~capacity () in
  let app = Iosys.new_domain sys ~name:"app" in
  let pool =
    Iobuf.Pool.create sys ~name:"cachetest" ~acl:(Mem.Vm.Only (Mem.Pdomain.Set.singleton app))
  in
  let cache = Filecache.create ?policy ~register_with_pageout:false sys () in
  (sys, app, pool, cache)

let agg_str agg =
  let buf = Buffer.create 16 in
  Iobuf.Agg.iter_slices agg (fun sl ->
      let data, off = Iobuf.Slice.view sl in
      Buffer.add_subbytes buf data off (Iobuf.Slice.len sl));
  Buffer.contents buf

let put cache pool app ~file ~off s =
  Filecache.insert cache ~file ~off (Iobuf.Agg.of_string pool ~producer:app s)

let test_insert_lookup () =
  let _, app, pool, cache = mk () in
  put cache pool app ~file:1 ~off:0 "hello world";
  (match Filecache.lookup cache ~file:1 ~off:0 ~len:11 with
  | Some a ->
    Alcotest.(check string) "full hit" "hello world" (agg_str a);
    Iobuf.Agg.free a
  | None -> Alcotest.fail "expected hit");
  (match Filecache.lookup cache ~file:1 ~off:6 ~len:5 with
  | Some a ->
    Alcotest.(check string) "partial range hit" "world" (agg_str a);
    Iobuf.Agg.free a
  | None -> Alcotest.fail "expected partial hit");
  Alcotest.(check int) "hits" 2 (Filecache.hits cache)

let test_miss () =
  let _, app, pool, cache = mk () in
  put cache pool app ~file:1 ~off:0 "abc";
  Alcotest.(check bool) "other file misses" true
    (Filecache.lookup cache ~file:2 ~off:0 ~len:1 = None);
  Alcotest.(check bool) "beyond extent misses" true
    (Filecache.lookup cache ~file:1 ~off:2 ~len:5 = None);
  Alcotest.(check int) "misses" 2 (Filecache.misses cache)

let test_write_replaces () =
  let _, app, pool, cache = mk () in
  put cache pool app ~file:7 ~off:0 "aaaaaaaaaa";
  put cache pool app ~file:7 ~off:3 "BBBB";
  let check_range off len expect =
    match Filecache.lookup cache ~file:7 ~off ~len with
    | Some a ->
      Alcotest.(check string) "range" expect (agg_str a);
      Iobuf.Agg.free a
    | None -> Alcotest.fail "expected hit"
  in
  check_range 0 3 "aaa";
  check_range 3 4 "BBBB";
  check_range 7 3 "aaa";
  Alcotest.(check int) "three entries after carve" 3 (Filecache.entry_count cache);
  Alcotest.(check int) "byte total" 10 (Filecache.total_bytes cache)

let test_snapshot_semantics () =
  (* Data returned by a read must be unaffected by a later write to the
     same range (Section 3.5). *)
  let _, app, pool, cache = mk () in
  put cache pool app ~file:9 ~off:0 "original!!";
  let snapshot =
    match Filecache.lookup cache ~file:9 ~off:0 ~len:10 with
    | Some a -> a
    | None -> Alcotest.fail "hit expected"
  in
  put cache pool app ~file:9 ~off:0 "rewritten-";
  Alcotest.(check string) "snapshot unchanged" "original!!" (agg_str snapshot);
  (match Filecache.lookup cache ~file:9 ~off:0 ~len:10 with
  | Some fresh ->
    Alcotest.(check string) "new readers see the write" "rewritten-" (agg_str fresh);
    Iobuf.Agg.free fresh
  | None -> Alcotest.fail "hit expected");
  Iobuf.Agg.free snapshot

let test_invalidate_file () =
  let _, app, pool, cache = mk () in
  put cache pool app ~file:1 ~off:0 "abc";
  put cache pool app ~file:2 ~off:0 "def";
  Filecache.invalidate_file cache ~file:1;
  Alcotest.(check bool) "file 1 gone" true
    (Filecache.lookup cache ~file:1 ~off:0 ~len:3 = None);
  Alcotest.(check bool) "file 2 intact" true
    (Filecache.lookup cache ~file:2 ~off:0 ~len:3 <> None |> fun x ->
     x);
  Alcotest.(check int) "one entry left" 1 (Filecache.entry_count cache)

let test_eviction_prefers_unreferenced () =
  let _, app, pool, cache = mk () in
  put cache pool app ~file:1 ~off:0 (String.make 100 'a');
  put cache pool app ~file:2 ~off:0 (String.make 100 'b');
  (* Hold a reference into file 1's buffers: it should survive. *)
  let held =
    match Filecache.lookup cache ~file:1 ~off:0 ~len:100 with
    | Some a -> a
    | None -> Alcotest.fail "hit"
  in
  (* file 2 was accessed more recently, but is unreferenced: with LRU
     among unreferenced entries, file 2 is the victim. *)
  let freed = Filecache.evict_one cache in
  Alcotest.(check int) "evicted 100 bytes" 100 freed;
  Alcotest.(check bool) "file1 still cached" true
    (Filecache.covered cache ~file:1 ~off:0 ~len:100);
  Alcotest.(check bool) "file2 evicted" false
    (Filecache.covered cache ~file:2 ~off:0 ~len:100);
  Iobuf.Agg.free held

let test_eviction_falls_back_to_referenced () =
  let _, app, pool, cache = mk () in
  put cache pool app ~file:1 ~off:0 (String.make 50 'a');
  let held =
    match Filecache.lookup cache ~file:1 ~off:0 ~len:50 with
    | Some a -> a
    | None -> Alcotest.fail "hit"
  in
  let freed = Filecache.evict_one cache in
  Alcotest.(check int) "referenced entry evicted as last resort" 50 freed;
  (* The held aggregate's data must persist regardless. *)
  Alcotest.(check string) "snapshot persists" (String.make 50 'a') (agg_str held);
  Iobuf.Agg.free held

let test_capacity_enforced () =
  let _, app, pool, cache = mk () in
  Filecache.set_capacity cache (Some (fun () -> 250));
  put cache pool app ~file:1 ~off:0 (String.make 100 'a');
  put cache pool app ~file:2 ~off:0 (String.make 100 'b');
  put cache pool app ~file:3 ~off:0 (String.make 100 'c');
  Alcotest.(check bool) "within capacity" true (Filecache.total_bytes cache <= 250);
  Alcotest.(check bool) "lru victim was file 1" false
    (Filecache.covered cache ~file:1 ~off:0 ~len:100);
  Alcotest.(check bool) "file 3 present" true
    (Filecache.covered cache ~file:3 ~off:0 ~len:100)

let test_gds_prefers_small_victims () =
  (* GDS(1): H = L + 1/size, so with equal recency large files have
     smaller H and are evicted first. *)
  let _, app, pool, cache = mk ~policy:(Policy.gds ()) () in
  put cache pool app ~file:1 ~off:0 (String.make 1000 'L');
  put cache pool app ~file:2 ~off:0 (String.make 10 's');
  let freed = Filecache.evict_one cache in
  Alcotest.(check int) "large file evicted first" 1000 freed;
  Alcotest.(check bool) "small survives" true
    (Filecache.covered cache ~file:2 ~off:0 ~len:10)

let test_gds_inflation_protects_recent () =
  let _, app, pool, cache = mk ~policy:(Policy.gds ()) () in
  (* Insert a big file, evict it (L rises), then a big recent file should
     outrank an old small one only via inflation. *)
  put cache pool app ~file:1 ~off:0 (String.make 1000 'a');
  ignore (Filecache.evict_one cache);
  put cache pool app ~file:2 ~off:0 (String.make 10 'b');
  put cache pool app ~file:3 ~off:0 (String.make 1000 'c');
  (* H(file2) = L + 1/10 where L was 1/1000; H(file3) = L' + 1/1000 with
     L' = L... file3 still smaller priority: evicted. *)
  let freed = Filecache.evict_one cache in
  Alcotest.(check int) "bigger H survives" 1000 freed;
  Alcotest.(check bool) "small survives" true
    (Filecache.covered cache ~file:2 ~off:0 ~len:10)

let test_carve_preserves_disjoint () =
  (* An insert that overlaps the middle of a file must leave entries on
     both sides untouched and trim only the stragglers — offsets, byte
     totals and contents all preserved. *)
  let _, app, pool, cache = mk () in
  List.iter
    (fun (off, s) -> put cache pool app ~file:4 ~off s)
    [ (0, "AAAAAAAA"); (10, "BBBBBBBB"); (20, "CCCCCCCC");
      (30, "DDDDDDDD"); (40, "EEEEEEEE") ];
  (* Overwrite [15, 35): clips B on the right, swallows C, clips D on
     the left. *)
  put cache pool app ~file:4 ~off:15 (String.make 20 'x');
  Alcotest.(check (list (pair int int)))
    "entry layout"
    [ (0, 8); (10, 5); (15, 20); (35, 3); (40, 8) ]
    (Filecache.entries cache ~file:4);
  Alcotest.(check int) "byte total" 44 (Filecache.total_bytes cache);
  let check_range off len expect =
    match Filecache.lookup cache ~file:4 ~off ~len with
    | Some a ->
      Alcotest.(check string) "range" expect (agg_str a);
      Iobuf.Agg.free a
    | None -> Alcotest.fail "expected hit"
  in
  check_range 0 8 "AAAAAAAA";
  check_range 10 5 "BBBBB";
  check_range 35 3 "DDD";
  check_range 40 8 "EEEEEEEE";
  Alcotest.(check bool) "carved range gone at 20" true
    (Filecache.lookup cache ~file:4 ~off:15 ~len:20 <> None)

let test_evict_victim_order () =
  (* The victim-capture eviction (single index probe) must still follow
     strict LRU order and report exact byte counts. *)
  let _, app, pool, cache = mk () in
  put cache pool app ~file:1 ~off:0 (String.make 11 'a');
  put cache pool app ~file:2 ~off:0 (String.make 22 'b');
  put cache pool app ~file:3 ~off:0 (String.make 33 'c');
  ignore (Filecache.lookup cache ~file:1 ~off:0 ~len:11 |> Option.map Iobuf.Agg.free);
  Alcotest.(check int) "oldest untouched evicted" 22 (Filecache.evict_one cache);
  Alcotest.(check int) "then next" 33 (Filecache.evict_one cache);
  Alcotest.(check int) "then the touched one" 11 (Filecache.evict_one cache);
  Alcotest.(check int) "empty" 0 (Filecache.evict_one cache);
  Alcotest.(check int) "evictions counted" 3 (Filecache.evictions cache)

let test_shrinking_capacity_converges () =
  let _, app, pool, cache = mk () in
  for file = 1 to 20 do
    put cache pool app ~file ~off:0 (String.make 50 'x')
  done;
  (* A capacity that shrinks on every read: enforcement must re-check it
     between rounds and still converge to the floor — with one read per
     round, not one per eviction. *)
  let calls = ref 0 in
  Filecache.set_capacity cache
    (Some
       (fun () ->
         incr calls;
         max 100 (1000 - (200 * !calls))));
  put cache pool app ~file:21 ~off:0 (String.make 50 'x');
  Alcotest.(check bool) "converged to the floor" true
    (Filecache.total_bytes cache <= 100);
  Alcotest.(check bool) "many evictions" true (Filecache.evictions cache >= 15);
  Alcotest.(check bool)
    (Printf.sprintf "capacity read per round, not per eviction (%d reads)"
       !calls)
    true
    (!calls < 10 && !calls < Filecache.evictions cache)

let test_fastpath_counters () =
  let sys, app, pool, cache = mk () in
  let m = Iosys.metrics sys in
  let get name = Iolite_obs.Metrics.get m name in
  put cache pool app ~file:1 ~off:0 "0123456789";
  put cache pool app ~file:1 ~off:10 "abcdefghij";
  let free_hit ~off ~len =
    match Filecache.lookup cache ~file:1 ~off ~len with
    | Some a -> Iobuf.Agg.free a
    | None -> Alcotest.fail "expected hit"
  in
  (* Exact entry bounds: the zero-alloc path. *)
  free_hit ~off:0 ~len:10;
  Alcotest.(check int) "fastpath hit" 1 (get "cache.fastpath_hit");
  (* Sub-range of one entry: hit, but not the fast path. *)
  free_hit ~off:2 ~len:5;
  (* Spanning two entries: hit, not the fast path. *)
  free_hit ~off:5 ~len:10;
  Alcotest.(check int) "no further fastpath" 1 (get "cache.fastpath_hit");
  Alcotest.(check int) "all were hits" 3 (get "cache.hit");
  ignore (Filecache.lookup cache ~file:1 ~off:15 ~len:10);
  Alcotest.(check int) "miss counted" 1 (get "cache.miss");
  Alcotest.(check int) "every lookup probed" 4 (get "cache.probe")

let test_eviction_never_scans_slices () =
  (* The Section 3.7 check on the eviction path must be the O(1) counter
     read ([cache.refcheck]), never the per-slice walk ([cache.refscan])
     — even across an eviction storm with live external references. *)
  let sys, app, pool, cache = mk () in
  let m = Iosys.metrics sys in
  for file = 1 to 30 do
    put cache pool app ~file ~off:0 (String.make 64 (Char.chr (64 + file)))
  done;
  (* A partial-range hold pins boundary buffers of file 5's entry. *)
  let held =
    match Filecache.lookup cache ~file:5 ~off:8 ~len:16 with
    | Some a -> a
    | None -> Alcotest.fail "hit"
  in
  while Filecache.evict_one cache > 0 do
    ()
  done;
  Alcotest.(check int) "cache emptied" 0 (Filecache.entry_count cache);
  Alcotest.(check int) "no slice scans on the hot path" 0
    (Iolite_obs.Metrics.get m "cache.refscan");
  Alcotest.(check bool) "O(1) checks happened" true
    (Iolite_obs.Metrics.get m "cache.refcheck" > 0);
  Alcotest.(check string) "held snapshot outlives eviction"
    (String.make 16 'E') (agg_str held);
  Iobuf.Agg.free held

let test_ref_tracking_transitions () =
  (* External references appear and disappear via buffer refcount
     transitions; the per-entry counters must track them exactly and
     steer eviction per Section 3.7. *)
  let _, app, pool, cache = mk () in
  put cache pool app ~file:1 ~off:0 (String.make 100 'a');
  put cache pool app ~file:2 ~off:0 (String.make 100 'b');
  Alcotest.(check bool) "counters clean" true (Filecache.verify_ref_tracking cache);
  (* A partial-range lookup creates fresh boundary leaves holding real
     buffer references: file 1 becomes externally referenced. *)
  let held =
    match Filecache.lookup cache ~file:1 ~off:10 ~len:50 with
    | Some a -> a
    | None -> Alcotest.fail "hit"
  in
  (* Touch file 2 so file 1 is the LRU victim — but it is referenced. *)
  ignore (Filecache.lookup cache ~file:2 ~off:0 ~len:100 |> Option.map Iobuf.Agg.free);
  Alcotest.(check bool) "counters track the hold" true
    (Filecache.verify_ref_tracking cache);
  Alcotest.(check int) "unreferenced entry evicted instead" 100
    (Filecache.evict_one cache);
  Alcotest.(check bool) "referenced file survives" true
    (Filecache.covered cache ~file:1 ~off:0 ~len:100);
  Alcotest.(check bool) "recent file was sacrificed" false
    (Filecache.covered cache ~file:2 ~off:0 ~len:100);
  (* Releasing the hold flips the entry back to unreferenced. *)
  Iobuf.Agg.free held;
  Alcotest.(check bool) "counters track the release" true
    (Filecache.verify_ref_tracking cache);
  Alcotest.(check int) "now evictable" 100 (Filecache.evict_one cache)

let test_lru_policy_order () =
  let p = Policy.lru () in
  p.Policy.on_insert (1, 0) ~size:10;
  p.Policy.on_insert (2, 0) ~size:10;
  p.Policy.on_insert (3, 0) ~size:10;
  p.Policy.on_access (1, 0) ~size:10;
  Alcotest.(check (option (pair int int)))
    "oldest untouched is victim" (Some (2, 0))
    (p.Policy.choose ~eligible:(fun _ -> true));
  p.Policy.on_remove (2, 0);
  Alcotest.(check (option (pair int int)))
    "next victim" (Some (3, 0))
    (p.Policy.choose ~eligible:(fun _ -> true))

let test_lru_eligibility_filter () =
  let p = Policy.lru () in
  p.Policy.on_insert (1, 0) ~size:10;
  p.Policy.on_insert (2, 0) ~size:10;
  Alcotest.(check (option (pair int int)))
    "skips ineligible tail" (Some (2, 0))
    (p.Policy.choose ~eligible:(fun k -> k <> (1, 0)));
  Alcotest.(check (option (pair int int)))
    "none eligible" None
    (p.Policy.choose ~eligible:(fun _ -> false))

let test_gds_policy_skip_reinserts () =
  let p = Policy.gds () in
  p.Policy.on_insert (1, 0) ~size:1000;
  p.Policy.on_insert (2, 0) ~size:10;
  (* Skip the natural victim once; it must still be chooseable later. *)
  Alcotest.(check (option (pair int int)))
    "skip big" (Some (2, 0))
    (p.Policy.choose ~eligible:(fun k -> k = (2, 0)));
  Alcotest.(check (option (pair int int)))
    "big still tracked" (Some (1, 0))
    (p.Policy.choose ~eligible:(fun k -> k = (1, 0)))

let test_unified_trim_via_pageout () =
  (* Unified regime: a small physical memory forces pool chunk allocation
     to trigger pageout, which must evict cache entries (Section 3.7). *)
  let sys = Iosys.create ~capacity:(512 * 1024) () in
  let app = Iosys.new_domain sys ~name:"app" in
  let pool =
    Iobuf.Pool.create sys ~name:"p" ~acl:(Mem.Vm.Only (Mem.Pdomain.Set.singleton app))
  in
  let cache = Filecache.create ~register_with_pageout:true sys () in
  (* Fill the cache well past physical memory. *)
  for file = 1 to 24 do
    Filecache.insert cache ~file ~off:0
      (Iobuf.Agg.of_string pool ~producer:app (String.make 60_000 'x'))
  done;
  Alcotest.(check bool) "entries were evicted" true (Filecache.evictions cache > 0);
  Alcotest.(check bool) "cache bounded by memory" true
    (Filecache.total_bytes cache < 512 * 1024);
  Alcotest.(check bool) "memory not overcommitted much" true
    (Mem.Physmem.overcommit (Iosys.physmem sys) <= Mem.Page.chunk_size)

let test_policy_swap_preserves_entries () =
  let _, app, pool, cache = mk () in
  put cache pool app ~file:1 ~off:0 "aaa";
  put cache pool app ~file:2 ~off:0 "bbb";
  Filecache.set_policy cache (Policy.gds ());
  Alcotest.(check string) "policy swapped" "GDS" (Filecache.policy_name cache);
  (* Both entries remain evictable under the new policy. *)
  let freed = Filecache.evict_one cache + Filecache.evict_one cache in
  Alcotest.(check int) "all entries reachable" 6 freed

(* ------------------------------------------------------------------ *)
(* Model-based property test: the cache against a byte-level oracle.   *)
(* ------------------------------------------------------------------ *)

type op =
  | Op_insert of int * int * string (* file, off, data: replaces *)
  | Op_backfill of int * int * string (* file, off, data: fills gaps *)
  | Op_lookup of int * int * int (* file, off, len *)
  | Op_invalidate of int

let op_gen =
  let open QCheck.Gen in
  let file = 0 -- 3 in
  let off = 0 -- 300 in
  let data = string_size ~gen:(char_range 'a' 'z') (1 -- 120) in
  frequency
    [
      (4, map3 (fun f o d -> Op_insert (f, o, d)) file off data);
      (2, map3 (fun f o d -> Op_backfill (f, o, d)) file off data);
      (5, map3 (fun f o l -> Op_lookup (f, o, l)) file off (1 -- 150));
      (1, map (fun f -> Op_invalidate f) file);
    ]

let model_size = 600

let prop_cache_matches_model =
  QCheck.Test.make ~name:"filecache matches byte-level oracle" ~count:300
    (QCheck.make
       QCheck.Gen.(list_size (1 -- 40) op_gen)
       ~print:(fun ops ->
         String.concat ";"
           (List.map
              (function
                | Op_insert (f, o, d) ->
                  Printf.sprintf "ins(%d,%d,%d)" f o (String.length d)
                | Op_backfill (f, o, d) ->
                  Printf.sprintf "bf(%d,%d,%d)" f o (String.length d)
                | Op_lookup (f, o, l) -> Printf.sprintf "look(%d,%d,%d)" f o l
                | Op_invalidate f -> Printf.sprintf "inv(%d)" f)
              ops)))
    (fun ops ->
      let _, app, pool, cache = mk () in
      (* Oracle: per file, Some c where cached. *)
      let model = Array.init 4 (fun _ -> Array.make model_size None) in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Op_insert (f, off, d) ->
            Filecache.insert cache ~file:f ~off
              (Iobuf.Agg.of_string pool ~producer:app d);
            String.iteri (fun i c -> model.(f).(off + i) <- Some c) d
          | Op_backfill (f, off, d) ->
            Filecache.backfill cache ~file:f ~off
              (Iobuf.Agg.of_string pool ~producer:app d);
            String.iteri
              (fun i c ->
                if model.(f).(off + i) = None then
                  model.(f).(off + i) <- Some c)
              d
          | Op_invalidate f ->
            Filecache.invalidate_file cache ~file:f;
            Array.fill model.(f) 0 model_size None
          | Op_lookup (f, off, len) ->
            let expect =
              let rec gather i acc =
                if i = len then Some (List.rev acc)
                else begin
                  match model.(f).(off + i) with
                  | Some c -> gather (i + 1) (c :: acc)
                  | None -> None
                end
              in
              Option.map
                (fun cs -> String.init len (List.nth cs))
                (gather 0 [])
            in
            let got = Filecache.lookup cache ~file:f ~off ~len in
            (match (expect, got) with
            | None, None -> ()
            | Some e, Some agg ->
              if not (String.equal e (agg_str agg)) then ok := false;
              Iobuf.Agg.free agg
            | Some _, None | None, Some _ -> ok := false);
            Option.iter (fun _ -> ()) expect)
        ops;
      !ok)

(* ------------------------------------------------------------------ *)
(* Model-based property test: the interval index against the seed's    *)
(* sorted-list implementation, kept here as a behavioral oracle.       *)
(* ------------------------------------------------------------------ *)

module Listcache = struct
  (* The pre-index per-file sorted-list cache, over plain strings:
     carve via List.partition, backfill via a linear gap walk — the
     exact replacement semantics the tree must reproduce. *)
  type lentry = { loff : int; ldata : string }

  type t = (int, lentry list ref) Hashtbl.t

  let create () : t = Hashtbl.create 8
  let llen e = String.length e.ldata

  let file_entries t file =
    match Hashtbl.find_opt t file with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.replace t file r;
      r

  let insert_sorted r e =
    let rec go = function
      | [] -> [ e ]
      | x :: rest -> if e.loff < x.loff then e :: x :: rest else x :: go rest
    in
    r := go !r

  let carve t ~file ~off ~len =
    let r = file_entries t file in
    let overlapping, keep =
      List.partition (fun e -> e.loff < off + len && off < e.loff + llen e) !r
    in
    r := keep;
    List.iter
      (fun e ->
        let keep_left = off - e.loff in
        let keep_right = e.loff + llen e - (off + len) in
        if keep_left > 0 then
          insert_sorted r { loff = e.loff; ldata = String.sub e.ldata 0 keep_left };
        if keep_right > 0 then
          insert_sorted r
            {
              loff = off + len;
              ldata = String.sub e.ldata (off + len - e.loff) keep_right;
            })
      overlapping

  let insert t ~file ~off data =
    if String.length data > 0 then begin
      carve t ~file ~off ~len:(String.length data);
      insert_sorted (file_entries t file) { loff = off; ldata = data }
    end

  let backfill t ~file ~off data =
    let len = String.length data in
    if len > 0 then begin
      let r = file_entries t file in
      let cursor = ref off in
      let gaps = ref [] in
      List.iter
        (fun e ->
          let e_end = e.loff + llen e in
          if e.loff < off + len && e_end > !cursor then begin
            if e.loff > !cursor then gaps := (!cursor, e.loff - !cursor) :: !gaps;
            cursor := e_end
          end)
        !r;
      if !cursor < off + len then gaps := (!cursor, off + len - !cursor) :: !gaps;
      List.iter
        (fun (go, gl) ->
          insert_sorted r { loff = go; ldata = String.sub data (go - off) gl })
        (List.rev !gaps)
    end

  let lookup t ~file ~off ~len =
    let r = file_entries t file in
    let buf = Buffer.create len in
    let rec walk cursor = function
      | [] -> None
      | e :: rest ->
        let e_end = e.loff + llen e in
        if e_end <= cursor then walk cursor rest
        else if e.loff > cursor then None
        else begin
          let lo = max cursor e.loff and hi = min (off + len) e_end in
          Buffer.add_string buf (String.sub e.ldata (lo - e.loff) (hi - lo));
          if hi >= off + len then Some (Buffer.contents buf) else walk hi rest
        end
    in
    walk off !r

  let invalidate t ~file = Hashtbl.remove t file

  let entries t ~file =
    match Hashtbl.find_opt t file with
    | None -> []
    | Some r -> List.map (fun e -> (e.loff, llen e)) !r

  let file_bytes t ~file =
    List.fold_left (fun acc (_, l) -> acc + l) 0 (entries t ~file)
end

type oop =
  | Oop_insert of int * int * string
  | Oop_backfill of int * int * string
  | Oop_lookup of int * int * int * bool (* file, off, len, hold snapshot *)
  | Oop_evict
  | Oop_invalidate of int

let oracle_files = 3

let oop_gen =
  let open QCheck.Gen in
  let file = 0 -- (oracle_files - 1) in
  let off = 0 -- 200 in
  let data = string_size ~gen:(char_range 'a' 'z') (1 -- 80) in
  frequency
    [
      (5, map3 (fun f o d -> Oop_insert (f, o, d)) file off data);
      (2, map3 (fun f o d -> Oop_backfill (f, o, d)) file off data);
      ( 4,
        map3
          (fun f o (l, h) -> Oop_lookup (f, o, l, h))
          file off
          (pair (1 -- 100) bool) );
      (2, return Oop_evict);
      (1, map (fun f -> Oop_invalidate f) file);
    ]

let prop_cache_matches_list_impl =
  QCheck.Test.make ~name:"interval index matches sorted-list implementation"
    ~count:200
    (QCheck.make
       QCheck.Gen.(list_size (1 -- 60) oop_gen)
       ~print:(fun ops ->
         String.concat ";"
           (List.map
              (function
                | Oop_insert (f, o, d) ->
                  Printf.sprintf "ins(%d,%d,%d)" f o (String.length d)
                | Oop_backfill (f, o, d) ->
                  Printf.sprintf "bf(%d,%d,%d)" f o (String.length d)
                | Oop_lookup (f, o, l, h) ->
                  Printf.sprintf "look(%d,%d,%d,%b)" f o l h
                | Oop_evict -> "evict"
                | Oop_invalidate f -> Printf.sprintf "inv(%d)" f)
              ops)))
    (fun ops ->
      let _, app, pool, cache = mk () in
      let oracle = Listcache.create () in
      let held = ref [] (* (agg, expected bytes) snapshots *) in
      let ok = ref true in
      let check b = if not b then ok := false in
      (* Eviction drops whole entries the oracle can't predict (policy
         state differs); reconcile it from the cache's entry layout and
         check the freed byte count matches what disappeared. *)
      let resync_after_evict freed =
        let dropped = ref 0 in
        for f = 0 to oracle_files - 1 do
          let real = Filecache.entries cache ~file:f in
          let r = Listcache.file_entries oracle f in
          r :=
            List.filter
              (fun e ->
                if List.mem (e.Listcache.loff, Listcache.llen e) real then true
                else begin
                  dropped := !dropped + Listcache.llen e;
                  false
                end)
              !r
        done;
        check (freed = !dropped)
      in
      let agree () =
        for f = 0 to oracle_files - 1 do
          check (Filecache.entries cache ~file:f = Listcache.entries oracle ~file:f);
          check (Filecache.file_bytes cache ~file:f = Listcache.file_bytes oracle ~file:f)
        done;
        check (Filecache.verify_ref_tracking cache)
      in
      List.iter
        (fun op ->
          (match op with
          | Oop_insert (f, off, d) ->
            Filecache.insert cache ~file:f ~off
              (Iobuf.Agg.of_string pool ~producer:app d);
            Listcache.insert oracle ~file:f ~off d
          | Oop_backfill (f, off, d) ->
            Filecache.backfill cache ~file:f ~off
              (Iobuf.Agg.of_string pool ~producer:app d);
            Listcache.backfill oracle ~file:f ~off d
          | Oop_lookup (f, off, len, hold) -> (
            let expect = Listcache.lookup oracle ~file:f ~off ~len in
            let got = Filecache.lookup cache ~file:f ~off ~len in
            match (expect, got) with
            | None, None -> ()
            | Some e, Some agg ->
              check (String.equal e (agg_str agg));
              (* Snapshot semantics: the result must keep these exact
                 bytes across every later carve/eviction. *)
              if hold then held := (agg, e) :: !held else Iobuf.Agg.free agg
            | Some _, None | None, Some _ -> check false)
          | Oop_evict -> resync_after_evict (Filecache.evict_one cache)
          | Oop_invalidate f ->
            Filecache.invalidate_file cache ~file:f;
            Listcache.invalidate oracle ~file:f);
          agree ())
        ops;
      List.iter
        (fun (agg, expect) ->
          check (String.equal expect (agg_str agg));
          Iobuf.Agg.free agg)
        !held;
      check (Filecache.verify_ref_tracking cache);
      !ok)

let test_deep_per_file_list () =
  (* Thousands of entries on one file, inserted in descending offset
     order so every insertion traverses the whole sorted list — a stack
     overflow with a non-tail-recursive insert. *)
  let _, app, pool, cache = mk () in
  let n = 5000 in
  for i = n - 1 downto 0 do
    put cache pool app ~file:7 ~off:(i * 2) "ab"
  done;
  Alcotest.(check int) "all entries present" n (Filecache.entry_count cache);
  (match Filecache.lookup cache ~file:7 ~off:(2 * (n - 1)) ~len:2 with
  | Some a ->
    Alcotest.(check string) "last entry readable" "ab" (agg_str a);
    Iobuf.Agg.free a
  | None -> Alcotest.fail "expected hit");
  (* Spanning lookup walks the sorted list across many entries. *)
  match Filecache.lookup cache ~file:7 ~off:0 ~len:(2 * n) with
  | Some a ->
    Alcotest.(check int) "spanning range" (2 * n) (Iobuf.Agg.length a);
    Iobuf.Agg.free a
  | None -> Alcotest.fail "expected spanning hit"

let test_slice_stats () =
  let sys, app, pool, cache = mk () in
  Alcotest.(check int) "empty" 0 (Filecache.total_slices cache);
  (* Two single-buffer entries plus one spanning two chunks. *)
  put cache pool app ~file:1 ~off:0 "hello";
  put cache pool app ~file:2 ~off:0 "world";
  put cache pool app ~file:3 ~off:0 (String.make (Iobuf.Pool.max_alloc + 10) 'x');
  Alcotest.(check int) "pinned slices" 4 (Filecache.total_slices cache);
  Filecache.invalidate_file cache ~file:3;
  Alcotest.(check int) "after invalidate" 2 (Filecache.total_slices cache);
  (* Checksum-cache side of the same O(1) counter. *)
  let ck = Iolite_net.Cksum.Cache.create () in
  (match Filecache.lookup cache ~file:1 ~off:0 ~len:5 with
  | Some a ->
    ignore (Iolite_net.Cksum.Cache.agg_sum ck a);
    ignore (Iolite_net.Cksum.Cache.agg_sum ck a);
    Alcotest.(check int) "cksum slices summed" 2
      (Iolite_net.Cksum.Cache.slices_summed ck);
    Iobuf.Agg.free a
  | None -> Alcotest.fail "expected hit");
  ignore sys

let suites =
  [
    ( "core.filecache",
      [
        Alcotest.test_case "insert/lookup" `Quick test_insert_lookup;
        Alcotest.test_case "slice stats" `Quick test_slice_stats;
        Alcotest.test_case "miss" `Quick test_miss;
        Alcotest.test_case "write replaces" `Quick test_write_replaces;
        Alcotest.test_case "snapshot semantics" `Quick test_snapshot_semantics;
        Alcotest.test_case "invalidate file" `Quick test_invalidate_file;
        Alcotest.test_case "evict unreferenced first" `Quick test_eviction_prefers_unreferenced;
        Alcotest.test_case "evict referenced fallback" `Quick test_eviction_falls_back_to_referenced;
        Alcotest.test_case "capacity" `Quick test_capacity_enforced;
        Alcotest.test_case "unified pageout trim" `Quick test_unified_trim_via_pageout;
        Alcotest.test_case "policy swap" `Quick test_policy_swap_preserves_entries;
        Alcotest.test_case "deep per-file list" `Quick test_deep_per_file_list;
        Alcotest.test_case "carve preserves disjoint" `Quick test_carve_preserves_disjoint;
        Alcotest.test_case "evict victim order" `Quick test_evict_victim_order;
        Alcotest.test_case "shrinking capacity converges" `Quick test_shrinking_capacity_converges;
        Alcotest.test_case "fastpath counters" `Quick test_fastpath_counters;
        Alcotest.test_case "eviction never scans slices" `Quick test_eviction_never_scans_slices;
        Alcotest.test_case "ref tracking transitions" `Quick test_ref_tracking_transitions;
      ] );
    ( "core.filecache.props",
      [
        QCheck_alcotest.to_alcotest prop_cache_matches_model;
        QCheck_alcotest.to_alcotest prop_cache_matches_list_impl;
      ] );
    ( "core.policy",
      [
        Alcotest.test_case "lru order" `Quick test_lru_policy_order;
        Alcotest.test_case "lru eligibility" `Quick test_lru_eligibility_filter;
        Alcotest.test_case "gds size preference" `Quick test_gds_prefers_small_victims;
        Alcotest.test_case "gds inflation" `Quick test_gds_inflation_protects_recent;
        Alcotest.test_case "gds skip reinserts" `Quick test_gds_policy_skip_reinserts;
      ] );
  ]
