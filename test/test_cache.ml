open Iolite_core
module Mem = Iolite_mem

let mk ?policy ?(capacity = 32 * 1024 * 1024) () =
  let sys = Iosys.create ~capacity () in
  let app = Iosys.new_domain sys ~name:"app" in
  let pool =
    Iobuf.Pool.create sys ~name:"cachetest" ~acl:(Mem.Vm.Only (Mem.Pdomain.Set.singleton app))
  in
  let cache = Filecache.create ?policy ~register_with_pageout:false sys () in
  (sys, app, pool, cache)

let agg_str agg =
  let buf = Buffer.create 16 in
  Iobuf.Agg.iter_slices agg (fun sl ->
      let data, off = Iobuf.Slice.view sl in
      Buffer.add_subbytes buf data off (Iobuf.Slice.len sl));
  Buffer.contents buf

let put cache pool app ~file ~off s =
  Filecache.insert cache ~file ~off (Iobuf.Agg.of_string pool ~producer:app s)

let test_insert_lookup () =
  let _, app, pool, cache = mk () in
  put cache pool app ~file:1 ~off:0 "hello world";
  (match Filecache.lookup cache ~file:1 ~off:0 ~len:11 with
  | Some a ->
    Alcotest.(check string) "full hit" "hello world" (agg_str a);
    Iobuf.Agg.free a
  | None -> Alcotest.fail "expected hit");
  (match Filecache.lookup cache ~file:1 ~off:6 ~len:5 with
  | Some a ->
    Alcotest.(check string) "partial range hit" "world" (agg_str a);
    Iobuf.Agg.free a
  | None -> Alcotest.fail "expected partial hit");
  Alcotest.(check int) "hits" 2 (Filecache.hits cache)

let test_miss () =
  let _, app, pool, cache = mk () in
  put cache pool app ~file:1 ~off:0 "abc";
  Alcotest.(check bool) "other file misses" true
    (Filecache.lookup cache ~file:2 ~off:0 ~len:1 = None);
  Alcotest.(check bool) "beyond extent misses" true
    (Filecache.lookup cache ~file:1 ~off:2 ~len:5 = None);
  Alcotest.(check int) "misses" 2 (Filecache.misses cache)

let test_write_replaces () =
  let _, app, pool, cache = mk () in
  put cache pool app ~file:7 ~off:0 "aaaaaaaaaa";
  put cache pool app ~file:7 ~off:3 "BBBB";
  let check_range off len expect =
    match Filecache.lookup cache ~file:7 ~off ~len with
    | Some a ->
      Alcotest.(check string) "range" expect (agg_str a);
      Iobuf.Agg.free a
    | None -> Alcotest.fail "expected hit"
  in
  check_range 0 3 "aaa";
  check_range 3 4 "BBBB";
  check_range 7 3 "aaa";
  Alcotest.(check int) "three entries after carve" 3 (Filecache.entry_count cache);
  Alcotest.(check int) "byte total" 10 (Filecache.total_bytes cache)

let test_snapshot_semantics () =
  (* Data returned by a read must be unaffected by a later write to the
     same range (Section 3.5). *)
  let _, app, pool, cache = mk () in
  put cache pool app ~file:9 ~off:0 "original!!";
  let snapshot =
    match Filecache.lookup cache ~file:9 ~off:0 ~len:10 with
    | Some a -> a
    | None -> Alcotest.fail "hit expected"
  in
  put cache pool app ~file:9 ~off:0 "rewritten-";
  Alcotest.(check string) "snapshot unchanged" "original!!" (agg_str snapshot);
  (match Filecache.lookup cache ~file:9 ~off:0 ~len:10 with
  | Some fresh ->
    Alcotest.(check string) "new readers see the write" "rewritten-" (agg_str fresh);
    Iobuf.Agg.free fresh
  | None -> Alcotest.fail "hit expected");
  Iobuf.Agg.free snapshot

let test_invalidate_file () =
  let _, app, pool, cache = mk () in
  put cache pool app ~file:1 ~off:0 "abc";
  put cache pool app ~file:2 ~off:0 "def";
  Filecache.invalidate_file cache ~file:1;
  Alcotest.(check bool) "file 1 gone" true
    (Filecache.lookup cache ~file:1 ~off:0 ~len:3 = None);
  Alcotest.(check bool) "file 2 intact" true
    (Filecache.lookup cache ~file:2 ~off:0 ~len:3 <> None |> fun x ->
     x);
  Alcotest.(check int) "one entry left" 1 (Filecache.entry_count cache)

let test_eviction_prefers_unreferenced () =
  let _, app, pool, cache = mk () in
  put cache pool app ~file:1 ~off:0 (String.make 100 'a');
  put cache pool app ~file:2 ~off:0 (String.make 100 'b');
  (* Hold a reference into file 1's buffers: it should survive. *)
  let held =
    match Filecache.lookup cache ~file:1 ~off:0 ~len:100 with
    | Some a -> a
    | None -> Alcotest.fail "hit"
  in
  (* file 2 was accessed more recently, but is unreferenced: with LRU
     among unreferenced entries, file 2 is the victim. *)
  let freed = Filecache.evict_one cache in
  Alcotest.(check int) "evicted 100 bytes" 100 freed;
  Alcotest.(check bool) "file1 still cached" true
    (Filecache.covered cache ~file:1 ~off:0 ~len:100);
  Alcotest.(check bool) "file2 evicted" false
    (Filecache.covered cache ~file:2 ~off:0 ~len:100);
  Iobuf.Agg.free held

let test_eviction_falls_back_to_referenced () =
  let _, app, pool, cache = mk () in
  put cache pool app ~file:1 ~off:0 (String.make 50 'a');
  let held =
    match Filecache.lookup cache ~file:1 ~off:0 ~len:50 with
    | Some a -> a
    | None -> Alcotest.fail "hit"
  in
  let freed = Filecache.evict_one cache in
  Alcotest.(check int) "referenced entry evicted as last resort" 50 freed;
  (* The held aggregate's data must persist regardless. *)
  Alcotest.(check string) "snapshot persists" (String.make 50 'a') (agg_str held);
  Iobuf.Agg.free held

let test_capacity_enforced () =
  let _, app, pool, cache = mk () in
  Filecache.set_capacity cache (Some (fun () -> 250));
  put cache pool app ~file:1 ~off:0 (String.make 100 'a');
  put cache pool app ~file:2 ~off:0 (String.make 100 'b');
  put cache pool app ~file:3 ~off:0 (String.make 100 'c');
  Alcotest.(check bool) "within capacity" true (Filecache.total_bytes cache <= 250);
  Alcotest.(check bool) "lru victim was file 1" false
    (Filecache.covered cache ~file:1 ~off:0 ~len:100);
  Alcotest.(check bool) "file 3 present" true
    (Filecache.covered cache ~file:3 ~off:0 ~len:100)

let test_gds_prefers_small_victims () =
  (* GDS(1): H = L + 1/size, so with equal recency large files have
     smaller H and are evicted first. *)
  let _, app, pool, cache = mk ~policy:(Policy.gds ()) () in
  put cache pool app ~file:1 ~off:0 (String.make 1000 'L');
  put cache pool app ~file:2 ~off:0 (String.make 10 's');
  let freed = Filecache.evict_one cache in
  Alcotest.(check int) "large file evicted first" 1000 freed;
  Alcotest.(check bool) "small survives" true
    (Filecache.covered cache ~file:2 ~off:0 ~len:10)

let test_gds_inflation_protects_recent () =
  let _, app, pool, cache = mk ~policy:(Policy.gds ()) () in
  (* Insert a big file, evict it (L rises), then a big recent file should
     outrank an old small one only via inflation. *)
  put cache pool app ~file:1 ~off:0 (String.make 1000 'a');
  ignore (Filecache.evict_one cache);
  put cache pool app ~file:2 ~off:0 (String.make 10 'b');
  put cache pool app ~file:3 ~off:0 (String.make 1000 'c');
  (* H(file2) = L + 1/10 where L was 1/1000; H(file3) = L' + 1/1000 with
     L' = L... file3 still smaller priority: evicted. *)
  let freed = Filecache.evict_one cache in
  Alcotest.(check int) "bigger H survives" 1000 freed;
  Alcotest.(check bool) "small survives" true
    (Filecache.covered cache ~file:2 ~off:0 ~len:10)

let test_lru_policy_order () =
  let p = Policy.lru () in
  p.Policy.on_insert (1, 0) ~size:10;
  p.Policy.on_insert (2, 0) ~size:10;
  p.Policy.on_insert (3, 0) ~size:10;
  p.Policy.on_access (1, 0) ~size:10;
  Alcotest.(check (option (pair int int)))
    "oldest untouched is victim" (Some (2, 0))
    (p.Policy.choose ~eligible:(fun _ -> true));
  p.Policy.on_remove (2, 0);
  Alcotest.(check (option (pair int int)))
    "next victim" (Some (3, 0))
    (p.Policy.choose ~eligible:(fun _ -> true))

let test_lru_eligibility_filter () =
  let p = Policy.lru () in
  p.Policy.on_insert (1, 0) ~size:10;
  p.Policy.on_insert (2, 0) ~size:10;
  Alcotest.(check (option (pair int int)))
    "skips ineligible tail" (Some (2, 0))
    (p.Policy.choose ~eligible:(fun k -> k <> (1, 0)));
  Alcotest.(check (option (pair int int)))
    "none eligible" None
    (p.Policy.choose ~eligible:(fun _ -> false))

let test_gds_policy_skip_reinserts () =
  let p = Policy.gds () in
  p.Policy.on_insert (1, 0) ~size:1000;
  p.Policy.on_insert (2, 0) ~size:10;
  (* Skip the natural victim once; it must still be chooseable later. *)
  Alcotest.(check (option (pair int int)))
    "skip big" (Some (2, 0))
    (p.Policy.choose ~eligible:(fun k -> k = (2, 0)));
  Alcotest.(check (option (pair int int)))
    "big still tracked" (Some (1, 0))
    (p.Policy.choose ~eligible:(fun k -> k = (1, 0)))

let test_unified_trim_via_pageout () =
  (* Unified regime: a small physical memory forces pool chunk allocation
     to trigger pageout, which must evict cache entries (Section 3.7). *)
  let sys = Iosys.create ~capacity:(512 * 1024) () in
  let app = Iosys.new_domain sys ~name:"app" in
  let pool =
    Iobuf.Pool.create sys ~name:"p" ~acl:(Mem.Vm.Only (Mem.Pdomain.Set.singleton app))
  in
  let cache = Filecache.create ~register_with_pageout:true sys () in
  (* Fill the cache well past physical memory. *)
  for file = 1 to 24 do
    Filecache.insert cache ~file ~off:0
      (Iobuf.Agg.of_string pool ~producer:app (String.make 60_000 'x'))
  done;
  Alcotest.(check bool) "entries were evicted" true (Filecache.evictions cache > 0);
  Alcotest.(check bool) "cache bounded by memory" true
    (Filecache.total_bytes cache < 512 * 1024);
  Alcotest.(check bool) "memory not overcommitted much" true
    (Mem.Physmem.overcommit (Iosys.physmem sys) <= Mem.Page.chunk_size)

let test_policy_swap_preserves_entries () =
  let _, app, pool, cache = mk () in
  put cache pool app ~file:1 ~off:0 "aaa";
  put cache pool app ~file:2 ~off:0 "bbb";
  Filecache.set_policy cache (Policy.gds ());
  Alcotest.(check string) "policy swapped" "GDS" (Filecache.policy_name cache);
  (* Both entries remain evictable under the new policy. *)
  let freed = Filecache.evict_one cache + Filecache.evict_one cache in
  Alcotest.(check int) "all entries reachable" 6 freed

(* ------------------------------------------------------------------ *)
(* Model-based property test: the cache against a byte-level oracle.   *)
(* ------------------------------------------------------------------ *)

type op =
  | Op_insert of int * int * string (* file, off, data: replaces *)
  | Op_backfill of int * int * string (* file, off, data: fills gaps *)
  | Op_lookup of int * int * int (* file, off, len *)
  | Op_invalidate of int

let op_gen =
  let open QCheck.Gen in
  let file = 0 -- 3 in
  let off = 0 -- 300 in
  let data = string_size ~gen:(char_range 'a' 'z') (1 -- 120) in
  frequency
    [
      (4, map3 (fun f o d -> Op_insert (f, o, d)) file off data);
      (2, map3 (fun f o d -> Op_backfill (f, o, d)) file off data);
      (5, map3 (fun f o l -> Op_lookup (f, o, l)) file off (1 -- 150));
      (1, map (fun f -> Op_invalidate f) file);
    ]

let model_size = 600

let prop_cache_matches_model =
  QCheck.Test.make ~name:"filecache matches byte-level oracle" ~count:300
    (QCheck.make
       QCheck.Gen.(list_size (1 -- 40) op_gen)
       ~print:(fun ops ->
         String.concat ";"
           (List.map
              (function
                | Op_insert (f, o, d) ->
                  Printf.sprintf "ins(%d,%d,%d)" f o (String.length d)
                | Op_backfill (f, o, d) ->
                  Printf.sprintf "bf(%d,%d,%d)" f o (String.length d)
                | Op_lookup (f, o, l) -> Printf.sprintf "look(%d,%d,%d)" f o l
                | Op_invalidate f -> Printf.sprintf "inv(%d)" f)
              ops)))
    (fun ops ->
      let _, app, pool, cache = mk () in
      (* Oracle: per file, Some c where cached. *)
      let model = Array.init 4 (fun _ -> Array.make model_size None) in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Op_insert (f, off, d) ->
            Filecache.insert cache ~file:f ~off
              (Iobuf.Agg.of_string pool ~producer:app d);
            String.iteri (fun i c -> model.(f).(off + i) <- Some c) d
          | Op_backfill (f, off, d) ->
            Filecache.backfill cache ~file:f ~off
              (Iobuf.Agg.of_string pool ~producer:app d);
            String.iteri
              (fun i c ->
                if model.(f).(off + i) = None then
                  model.(f).(off + i) <- Some c)
              d
          | Op_invalidate f ->
            Filecache.invalidate_file cache ~file:f;
            Array.fill model.(f) 0 model_size None
          | Op_lookup (f, off, len) ->
            let expect =
              let rec gather i acc =
                if i = len then Some (List.rev acc)
                else begin
                  match model.(f).(off + i) with
                  | Some c -> gather (i + 1) (c :: acc)
                  | None -> None
                end
              in
              Option.map
                (fun cs -> String.init len (List.nth cs))
                (gather 0 [])
            in
            let got = Filecache.lookup cache ~file:f ~off ~len in
            (match (expect, got) with
            | None, None -> ()
            | Some e, Some agg ->
              if not (String.equal e (agg_str agg)) then ok := false;
              Iobuf.Agg.free agg
            | Some _, None | None, Some _ -> ok := false);
            Option.iter (fun _ -> ()) expect)
        ops;
      !ok)

let test_deep_per_file_list () =
  (* Thousands of entries on one file, inserted in descending offset
     order so every insertion traverses the whole sorted list — a stack
     overflow with a non-tail-recursive insert. *)
  let _, app, pool, cache = mk () in
  let n = 5000 in
  for i = n - 1 downto 0 do
    put cache pool app ~file:7 ~off:(i * 2) "ab"
  done;
  Alcotest.(check int) "all entries present" n (Filecache.entry_count cache);
  (match Filecache.lookup cache ~file:7 ~off:(2 * (n - 1)) ~len:2 with
  | Some a ->
    Alcotest.(check string) "last entry readable" "ab" (agg_str a);
    Iobuf.Agg.free a
  | None -> Alcotest.fail "expected hit");
  (* Spanning lookup walks the sorted list across many entries. *)
  match Filecache.lookup cache ~file:7 ~off:0 ~len:(2 * n) with
  | Some a ->
    Alcotest.(check int) "spanning range" (2 * n) (Iobuf.Agg.length a);
    Iobuf.Agg.free a
  | None -> Alcotest.fail "expected spanning hit"

let test_slice_stats () =
  let sys, app, pool, cache = mk () in
  Alcotest.(check int) "empty" 0 (Filecache.total_slices cache);
  (* Two single-buffer entries plus one spanning two chunks. *)
  put cache pool app ~file:1 ~off:0 "hello";
  put cache pool app ~file:2 ~off:0 "world";
  put cache pool app ~file:3 ~off:0 (String.make (Iobuf.Pool.max_alloc + 10) 'x');
  Alcotest.(check int) "pinned slices" 4 (Filecache.total_slices cache);
  Filecache.invalidate_file cache ~file:3;
  Alcotest.(check int) "after invalidate" 2 (Filecache.total_slices cache);
  (* Checksum-cache side of the same O(1) counter. *)
  let ck = Iolite_net.Cksum.Cache.create () in
  (match Filecache.lookup cache ~file:1 ~off:0 ~len:5 with
  | Some a ->
    ignore (Iolite_net.Cksum.Cache.agg_sum ck a);
    ignore (Iolite_net.Cksum.Cache.agg_sum ck a);
    Alcotest.(check int) "cksum slices summed" 2
      (Iolite_net.Cksum.Cache.slices_summed ck);
    Iobuf.Agg.free a
  | None -> Alcotest.fail "expected hit");
  ignore sys

let suites =
  [
    ( "core.filecache",
      [
        Alcotest.test_case "insert/lookup" `Quick test_insert_lookup;
        Alcotest.test_case "slice stats" `Quick test_slice_stats;
        Alcotest.test_case "miss" `Quick test_miss;
        Alcotest.test_case "write replaces" `Quick test_write_replaces;
        Alcotest.test_case "snapshot semantics" `Quick test_snapshot_semantics;
        Alcotest.test_case "invalidate file" `Quick test_invalidate_file;
        Alcotest.test_case "evict unreferenced first" `Quick test_eviction_prefers_unreferenced;
        Alcotest.test_case "evict referenced fallback" `Quick test_eviction_falls_back_to_referenced;
        Alcotest.test_case "capacity" `Quick test_capacity_enforced;
        Alcotest.test_case "unified pageout trim" `Quick test_unified_trim_via_pageout;
        Alcotest.test_case "policy swap" `Quick test_policy_swap_preserves_entries;
        Alcotest.test_case "deep per-file list" `Quick test_deep_per_file_list;
      ] );
    ("core.filecache.props", [ QCheck_alcotest.to_alcotest prop_cache_matches_model ]);
    ( "core.policy",
      [
        Alcotest.test_case "lru order" `Quick test_lru_policy_order;
        Alcotest.test_case "lru eligibility" `Quick test_lru_eligibility_filter;
        Alcotest.test_case "gds size preference" `Quick test_gds_prefers_small_victims;
        Alcotest.test_case "gds inflation" `Quick test_gds_inflation_protects_recent;
        Alcotest.test_case "gds skip reinserts" `Quick test_gds_policy_skip_reinserts;
      ] );
  ]
