module Engine = Iolite_sim.Engine
module Kernel = Iolite_os.Kernel
module Process = Iolite_os.Process
module Stdiol = Iolite_os.Stdiol
module Sock = Iolite_os.Sock
module Pipe = Iolite_ipc.Pipe
module Iobuf = Iolite_core.Iobuf
module Filestore = Iolite_fs.Filestore
module Counter = Iolite_obs.Metrics

let mk () = Kernel.create (Engine.create ())

let file_contents ~file ~size =
  String.init size (fun off -> Filestore.content_byte ~file ~off)

let test_input_lines_match_reference () =
  let kernel = mk () in
  let size = 100_000 in
  let file = Kernel.add_file kernel ~name:"/f" ~size in
  let expect =
    (* The file does not end in a newline in general; stdio returns the
       final unterminated line too. *)
    let s = file_contents ~file ~size in
    let lines = String.split_on_char '\n' s in
    match List.rev lines with "" :: rest -> List.rev rest | _ -> lines
  in
  let got = ref [] in
  ignore
    (Process.spawn kernel ~name:"reader" (fun proc ->
         let ic = Stdiol.open_file_in proc ~file in
         ignore (Stdiol.input_all_lines ic ~f:(fun l -> got := l :: !got))));
  Engine.run (Kernel.engine kernel);
  Alcotest.(check int) "line count" (List.length expect) (List.length !got);
  Alcotest.(check (list string)) "lines identical" expect (List.rev !got)

let test_input_agg_zero_copy () =
  let kernel = mk () in
  let size = 150_000 in
  let file = Kernel.add_file kernel ~name:"/f" ~size in
  let total = ref 0 in
  ignore
    (Process.spawn kernel ~name:"reader" (fun proc ->
         let ic = Stdiol.open_file_in proc ~file in
         let rec loop () =
           match Stdiol.input_agg ic 10_000 with
           | None -> ()
           | Some agg ->
             total := !total + Iobuf.Agg.length agg;
             Iobuf.Agg.free agg;
             loop ()
         in
         loop ()));
  Engine.run (Kernel.engine kernel);
  Alcotest.(check int) "all bytes" size !total;
  Alcotest.(check int) "no copies" 0
    (Counter.get (Kernel.metrics kernel) "bytes.copied")

let test_input_line_charges_copy () =
  let kernel = mk () in
  let size = 10_000 in
  let file = Kernel.add_file kernel ~name:"/f" ~size in
  ignore
    (Process.spawn kernel ~name:"reader" (fun proc ->
         let ic = Stdiol.open_file_in proc ~file in
         ignore (Stdiol.input_all_lines ic ~f:(fun _ -> ()))));
  Engine.run (Kernel.engine kernel);
  (* Every byte except newlines crosses into application memory. *)
  Alcotest.(check bool) "app copy charged" true
    (Counter.get (Kernel.metrics kernel) "bytes.copied" > size * 9 / 10)

let test_pipe_channels_roundtrip () =
  let kernel = mk () in
  let writer = Process.make kernel ~name:"w" in
  let reader = Process.make kernel ~name:"r" in
  let pipe =
    Pipe.create (Kernel.sys kernel) ~mode:Pipe.Zero_copy
      ~writer:(Process.domain writer)
      ~reader:(Process.domain reader)
      ~reader_pool:(Process.pool reader) ()
  in
  let lines = [ "alpha"; "beta"; "gamma delta"; "" ; "last" ] in
  let got = ref [] in
  Engine.spawn (Kernel.engine kernel) (fun () ->
      let oc = Stdiol.open_pipe_out writer pipe in
      List.iter (fun l -> Stdiol.output_string oc (l ^ "\n")) lines;
      Stdiol.close_out oc;
      Process.exit writer);
  Engine.spawn (Kernel.engine kernel) (fun () ->
      let ic = Stdiol.open_pipe_in reader pipe in
      ignore (Stdiol.input_all_lines ic ~f:(fun l -> got := l :: !got));
      Process.exit reader);
  Engine.run (Kernel.engine kernel);
  Alcotest.(check (list string)) "lines through pipe" lines (List.rev !got)

let test_output_agg_zero_copy_through () =
  let kernel = mk () in
  let writer = Process.make kernel ~name:"w" in
  let reader = Process.make kernel ~name:"r" in
  let pipe =
    Pipe.create (Kernel.sys kernel) ~mode:Pipe.Zero_copy
      ~writer:(Process.domain writer)
      ~reader:(Process.domain reader)
      ~reader_pool:(Process.pool reader) ()
  in
  let payload = String.make 30_000 'Z' in
  let total = ref 0 in
  Engine.spawn (Kernel.engine kernel) (fun () ->
      let oc = Stdiol.open_pipe_out writer pipe in
      let agg =
        Iolite_core.Iosys.with_fill_mode (Kernel.sys kernel) `Dma (fun () ->
            Iobuf.Agg.of_string (Pipe.stream_pool pipe)
              ~producer:(Process.domain writer) payload)
      in
      Stdiol.output_agg oc agg;
      Stdiol.close_out oc;
      Process.exit writer);
  Engine.spawn (Kernel.engine kernel) (fun () ->
      let ic = Stdiol.open_pipe_in reader pipe in
      let rec loop () =
        match Stdiol.input_agg ic 65536 with
        | None -> ()
        | Some agg ->
          total := !total + Iobuf.Agg.length agg;
          Iobuf.Agg.free agg;
          loop ()
      in
      loop ();
      Process.exit reader);
  Engine.run (Kernel.engine kernel);
  Alcotest.(check int) "all bytes" 30_000 !total;
  Alcotest.(check int) "fully zero copy" 0
    (Counter.get (Kernel.metrics kernel) "bytes.copied")

let test_file_out_roundtrip () =
  let kernel = mk () in
  let file = Kernel.add_file kernel ~name:"/out" ~size:200_000 in
  let readback = ref "" in
  ignore
    (Process.spawn kernel ~name:"writer" (fun proc ->
         let oc = Stdiol.open_file_out proc ~file in
         for i = 0 to 99 do
           Stdiol.output_string oc (Printf.sprintf "line %04d of output\n" i)
         done;
         Stdiol.close_out oc;
         readback :=
           Iolite_os.Fileio.read_string proc ~file ~off:0 ~len:(100 * 20)));
  Engine.run (Kernel.engine kernel);
  Alcotest.(check int) "bytes written back" 2000 (String.length !readback);
  Alcotest.(check bool) "first line correct" true
    (String.sub !readback 0 19 = "line 0000 of output")

let test_sendfile_serves_correct_bytes () =
  let kernel = mk () in
  let size = 40_000 in
  let file = Kernel.add_file kernel ~name:"/doc" ~size in
  let listener = Sock.listen ~reserve_tss:true kernel ~port:80 in
  let got = ref 0 in
  ignore
    (Process.spawn kernel ~name:"server" (fun proc ->
         let conn = Sock.accept proc listener in
         match Sock.recv proc conn ~zero_copy:false with
         | Some _ ->
           ignore (Sock.sendfile proc conn ~file ~header:"HTTP/1.0 200 OK\r\n\r\n")
         | None -> ()));
  Engine.spawn (Kernel.engine kernel) (fun () ->
      let conn = Sock.connect kernel listener in
      got := Sock.request conn "GET /doc";
      Sock.close conn);
  Engine.run (Kernel.engine kernel);
  Alcotest.(check int) "header + body" (size + 19) !got;
  (* sendfile splices: only the tiny header copy, not the payload. *)
  Alcotest.(check bool) "no payload copy" true
    (Counter.get (Kernel.metrics kernel) "bytes.copied" < 100)

let test_sendfile_variant_between_flash_and_lite () =
  let bw variant =
    let kernel = mk () in
    ignore (Kernel.add_file kernel ~name:"/doc" ~size:30_000);
    let server = Iolite_httpd.Flash.start ~variant kernel ~port:80 in
    let t_done = ref 0.0 in
    Engine.spawn (Kernel.engine kernel) (fun () ->
        let conn = Sock.connect kernel (Iolite_httpd.Flash.listener server) in
        for _ = 1 to 30 do
          ignore
            (Sock.request conn
               (Iolite_httpd.Http.request_string ~keep_alive:true "/doc"))
        done;
        Sock.close conn;
        t_done := Engine.Proc.now ());
    Engine.run (Kernel.engine kernel);
    !t_done
  in
  let t_lite = bw Iolite_httpd.Flash.Iolite in
  let t_sendfile = bw Iolite_httpd.Flash.Sendfile in
  let t_conv = bw Iolite_httpd.Flash.Conventional in
  Alcotest.(check bool) "sendfile beats copying Flash" true (t_sendfile < t_conv);
  Alcotest.(check bool) "Flash-Lite beats sendfile (checksum cache)" true
    (t_lite < t_sendfile)

let suites =
  [
    ( "os.stdiol",
      [
        Alcotest.test_case "lines match reference" `Quick test_input_lines_match_reference;
        Alcotest.test_case "input_agg zero copy" `Quick test_input_agg_zero_copy;
        Alcotest.test_case "input_line copies" `Quick test_input_line_charges_copy;
        Alcotest.test_case "pipe channels" `Quick test_pipe_channels_roundtrip;
        Alcotest.test_case "output_agg zero copy" `Quick test_output_agg_zero_copy_through;
        Alcotest.test_case "file out roundtrip" `Quick test_file_out_roundtrip;
      ] );
    ( "os.sendfile",
      [
        Alcotest.test_case "correct bytes" `Quick test_sendfile_serves_correct_bytes;
        Alcotest.test_case "between flash and lite" `Quick
          test_sendfile_variant_between_flash_and_lite;
      ] );
  ]
