(* Command-line driver: run any experiment of the IO-Lite reproduction. *)

module E = Iolite_workload.Experiments

let scale_arg =
  let doc =
    "Measurement-window scale factor (1.0 = recorded defaults; smaller is \
     quicker and noisier)."
  in
  Cmdliner.Arg.(value & opt float 1.0 & info [ "s"; "scale" ] ~docv:"SCALE" ~doc)

let verbose_arg =
  let doc = "Enable subsystem logging to stderr (repeat for debug)." in
  Cmdliner.Arg.(value & flag_all & info [ "v"; "verbose" ] ~doc)

let log_arg =
  let doc =
    "Per-source log level override, e.g. $(b,iolite.cache=debug) or \
     $(b,httpd=off). Repeatable; implies logging setup."
  in
  Cmdliner.Arg.(
    value & opt_all string [] & info [ "log" ] ~docv:"SOURCE=LEVEL" ~doc)

let metrics_arg =
  let doc =
    "Print each experiment point's metrics-registry snapshot and request \
     latency percentiles after measuring."
  in
  Cmdliner.Arg.(value & flag & info [ "metrics" ] ~doc)

let trace_arg =
  let doc =
    "Arm the virtual-clock tracer on every simulated kernel and write the \
     combined Chrome trace-event JSON (Perfetto-loadable) to $(docv) at \
     exit."
  in
  Cmdliner.Arg.(
    value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let with_logging verbose directives =
  (match verbose with
  | [] -> if directives <> [] then Iolite_util.Logging.setup ~level:Logs.Warning ()
  | [ _ ] -> Iolite_util.Logging.setup ~level:Logs.Info ()
  | _ -> Iolite_util.Logging.setup ~level:Logs.Debug ());
  List.iter
    (fun d ->
      match Iolite_util.Logging.apply_directive d with
      | Ok () -> ()
      | Error msg -> Printf.eprintf "--log %s: %s\n%!" d msg)
    directives

(* Install observability per the flags, run the thunk, then flush the
   trace sink to disk. *)
let with_observability ~metrics ~trace_out f =
  let sink =
    match trace_out with
    | None -> None
    | Some _ -> Some (Iolite_obs.Trace.Sink.create ())
  in
  E.set_observability ~metrics ?sink ();
  Fun.protect
    ~finally:(fun () ->
      (match (sink, trace_out) with
      | Some sink, Some path ->
        Iolite_obs.Trace.Sink.write sink path;
        Printf.eprintf "trace written to %s (%d kernels)\n%!" path
          (Iolite_obs.Trace.Sink.count sink)
      | _ -> ());
      E.set_observability ())
    f

let series_cmd name title x_label runner =
  let run verbose directives metrics trace_out scale =
    with_logging verbose directives;
    with_observability ~metrics ~trace_out (fun () ->
        E.print_series ~title ~x_label (runner ~scale ()))
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info name ~doc:title)
    Cmdliner.Term.(
      const run $ verbose_arg $ log_arg $ metrics_arg $ trace_arg $ scale_arg)

let unit_cmd name doc run =
  let run verbose directives metrics trace_out scale =
    with_logging verbose directives;
    with_observability ~metrics ~trace_out (fun () -> run scale)
  in
  Cmdliner.Cmd.v (Cmdliner.Cmd.info name ~doc)
    Cmdliner.Term.(
      const run $ verbose_arg $ log_arg $ metrics_arg $ trace_arg $ scale_arg)

let cmds =
  [
    series_cmd "fig3" "Fig 3: HTTP single-file test (non-persistent)" "KB"
      (fun ~scale () -> E.fig3 ~scale ());
    series_cmd "fig4" "Fig 4: persistent HTTP single-file test" "KB"
      (fun ~scale () -> E.fig4 ~scale ());
    series_cmd "fig5" "Fig 5: HTTP/FastCGI" "KB" (fun ~scale () ->
        E.fig5 ~scale ());
    series_cmd "fig6" "Fig 6: persistent HTTP/FastCGI" "KB" (fun ~scale () ->
        E.fig6 ~scale ());
    unit_cmd "fig7" "Fig 7: trace characteristics" (fun _scale ->
        E.print_fig7 ());
    unit_cmd "fig8" "Fig 8: overall trace performance" (fun scale ->
        E.print_fig8 ~scale ());
    unit_cmd "fig9" "Fig 9: 150MB subtrace characteristics" (fun _scale ->
        E.print_fig9 ());
    series_cmd "fig10" "Fig 10: MERGED subtrace performance" "dataset MB"
      (fun ~scale () -> E.fig10 ~scale ());
    series_cmd "fig11" "Fig 11: optimization contributions" "dataset MB"
      (fun ~scale () -> E.fig11 ~scale ());
    series_cmd "fig12" "Fig 12: throughput versus WAN delay" "RTT ms"
      (fun ~scale () -> E.fig12 ~scale ());
    unit_cmd "fig13" "Fig 13: application runtimes" (fun scale ->
        E.print_fig13 ~scale ());
    series_cmd "sendfile" "Extension: the sendfile ablation" "KB"
      (fun ~scale () -> E.ablation_sendfile ~scale ());
    series_cmd "cgi11" "Extension: CGI 1.1 vs FastCGI" "KB" (fun ~scale () ->
        E.ablation_cgi11 ~scale ());
    unit_cmd "all" "Run every figure in order" (fun scale ->
        E.run_all ~scale ());
    (let trace_name =
       Cmdliner.Arg.(
         value
         & pos 0 (enum [ ("ece", `Ece); ("cs", `Cs); ("merged", `Merged) ]) `Ece
         & info [] ~docv:"TRACE" ~doc:"Trace to inspect: ece, cs or merged.")
     in
     let run verbose which =
       with_logging verbose [];
       let module Trace = Iolite_workload.Trace in
       let spec =
         match which with
         | `Ece -> Trace.ece
         | `Cs -> Trace.cs
         | `Merged -> Trace.merged
       in
       let t = Trace.synthesize spec in
       Printf.printf "%s: %d files, %s total, mean transfer %s\n"
         spec.Trace.sname (Trace.file_count t)
         (Iolite_util.Table.fmt_bytes (Trace.total_bytes t))
         (Iolite_util.Table.fmt_bytes
            (int_of_float (Trace.mean_request_bytes t)));
       Printf.printf "\n%-12s %-14s %-12s\n" "top-N" "% requests" "% bytes";
       List.iter
         (fun top ->
           if top <= Trace.file_count t then begin
             let reqs, bytes = Trace.cdf_row t ~top in
             Printf.printf "%-12d %-14.1f %-12.1f\n" top (100. *. reqs)
               (100. *. bytes)
           end)
         [ 10; 100; 1000; 5000; 10000; 20000; Trace.file_count t ];
       let sizes =
         List.init 10 (fun i -> Trace.file_size t ~rank:(i * 37))
       in
       Printf.printf "\nsample sizes by popularity rank (0,37,74,...): %s\n"
         (String.concat ", " (List.map Iolite_util.Table.fmt_bytes sizes))
     in
     Cmdliner.Cmd.v
       (Cmdliner.Cmd.info "trace" ~doc:"Inspect a synthesized trace")
       Cmdliner.Term.(const run $ verbose_arg $ trace_name));
    (let conns_arg =
       Cmdliner.Arg.(
         value
         & opt (list int) [ 1_000; 10_000 ]
         & info [ "c"; "conns" ] ~docv:"N,N,..."
             ~doc:
               "Concurrent-connection populations to sweep (the recorded \
                BENCH_scale.json runs 1e3,1e4,1e5,1e6).")
     in
     let requests_arg =
       Cmdliner.Arg.(
         value
         & opt (some int) None
         & info [ "requests" ] ~docv:"N"
             ~doc:"Measured-phase requests per point (default 50000).")
     in
     let baseline_arg =
       Cmdliner.Arg.(
         value
         & flag
         & info [ "baseline-only" ]
             ~doc:
               "Run only the heap-timer, single-shard baseline \
                configuration (default: baseline and scaffolding both).")
     in
     let run verbose directives conns requests baseline_only =
       with_logging verbose directives;
       let points =
         List.concat_map
           (fun n ->
             let p b = E.c1m ~baseline:b ?requests ~conns:n () in
             if baseline_only then [ p true ] else [ p true; p false ])
           conns
       in
       E.print_c1m points
     in
     Cmdliner.Cmd.v
       (Cmdliner.Cmd.info "scale"
          ~doc:
            "C1M sweep: hold N concurrent connections against Flash-Lite \
             and measure per-request wall cost, latency percentiles, \
             warm-phase fresh allocations, and timer churn at full \
             population")
       Cmdliner.Term.(
         const run $ verbose_arg $ log_arg $ conns_arg $ requests_arg
         $ baseline_arg));
    (let run verbose directives scale =
       with_logging verbose directives;
       let points = E.async_sweep ~scale () in
       E.print_async points;
       E.print_async_tail points
     in
     Cmdliner.Cmd.v
       (Cmdliner.Cmd.info "async"
          ~doc:
            "Async disk pipeline sweep: legacy/async backends at 128MB \
             (warm) and 24MB (memory pressure), measuring foreground \
             small-file latency percentiles under a background scan, disk \
             utilization, batching, miss coalescing and readahead \
             accuracy")
       Cmdliner.Term.(const run $ verbose_arg $ log_arg $ scale_arg));
    (let crash_arg =
       Cmdliner.Arg.(
         value & opt int 0
         & info [ "crash" ] ~docv:"N"
             ~doc:
               "Also run the crash-at-any-point consistency harness over \
                $(docv) randomized crash points (the recorded \
                BENCH_write.json uses 1000) and report oracle failures.")
     in
     let run verbose directives metrics trace_out crash_points =
       with_logging verbose directives;
       with_observability ~metrics ~trace_out (fun () ->
           E.print_write (E.write_seq () @ E.write_cawl_sweep ()));
       if crash_points > 0 then begin
         let module C = Iolite_workload.Crash in
         Printf.printf "\ncrash harness: %d randomized crash points...\n%!"
           crash_points;
         C.print (C.run_many ~runs:crash_points ())
       end
     in
     Cmdliner.Cmd.v
       (Cmdliner.Cmd.info "write"
          ~doc:
            "Delayed write-back sweep: eager vs. clustered disk write \
             operations on the small-sequential-write headline, plus the \
             CAWL burst sweep at two sync-daemon flush intervals \
             (memory-speed vs. disk-bound regimes either side of the \
             dirty-limit knee)")
       Cmdliner.Term.(
         const run $ verbose_arg $ log_arg $ metrics_arg $ trace_arg
         $ crash_arg));
    (let tier_capacity_arg =
       Cmdliner.Arg.(
         value
         & opt (some int) None
         & info [ "tier-capacity" ] ~docv:"MB"
             ~doc:
               "NVMM tier byte budget in megabytes (default: tracks 10x \
                the machine's I/O budget).")
     in
     let tier_latency_arg =
       Cmdliner.Arg.(
         value
         & opt (some float) None
         & info [ "tier-latency" ] ~docv:"MB/S"
             ~doc:
               "Simulated NVMM transfer rate in MB/s (default 20 — \
                roughly 10x a DRAM hit on the small-transfer class; \
                lower means a more latent tier).")
     in
     let run verbose directives metrics trace_out scale capacity_mb rate =
       with_logging verbose directives;
       let tier_capacity =
         Option.map (fun mb -> mb * 1024 * 1024) capacity_mb
       in
       let tier_bytes_per_sec = Option.map (fun r -> r *. 1e6) rate in
       with_observability ~metrics ~trace_out (fun () ->
           let baseline =
             E.tier_sweep ~scale ~variant:`Baseline ?tier_capacity
               ?tier_bytes_per_sec ()
           in
           let tiered =
             E.tier_sweep ~scale ~variant:`Tiered ?tier_capacity
               ?tier_bytes_per_sec ()
           in
           let probe =
             (* The probe exhibits the stock cost model's three latency
                classes; skip it when the knobs reshape that model. *)
             if capacity_mb = None && rate = None then
               Some (E.tier_probe_run ())
             else None
           in
           E.print_tier (baseline @ tiered) probe)
     in
     Cmdliner.Cmd.v
       (Cmdliner.Cmd.info "tier"
          ~doc:
            "NVMM cache-tier sweep: working sets swept past a 64MB \
             machine's DRAM, dram-only baseline against the persistent \
             second tier with demotion/promotion traffic decomposed, \
             plus the three-class latency probe (DRAM hit, warm tier \
             hit, cold disk fill)")
       Cmdliner.Term.(
         const run $ verbose_arg $ log_arg $ metrics_arg $ trace_arg
         $ scale_arg $ tier_capacity_arg $ tier_latency_arg));
    (let run verbose directives metrics trace_out =
       with_logging verbose directives;
       let r = E.smoke () in
       (match trace_out with
       | Some path ->
         let oc = open_out path in
         output_string oc r.E.sm_trace_json;
         close_out oc;
         Printf.eprintf "trace written to %s\n%!" path
       | None -> ());
       Printf.printf "smoke: %d requests" r.E.sm_requests;
       (match r.E.sm_latency with
       | Some s ->
         Printf.printf ", latency p50=%.4fs p90=%.4fs p99=%.4fs"
           s.Iolite_util.Stats.p50 s.Iolite_util.Stats.p90
           s.Iolite_util.Stats.p99
       | None -> ());
       let total, scanned, saved = r.E.sm_cksum in
       Printf.printf ", cksum total=%d scanned=%d saved=%d\n" total scanned
         saved;
       if metrics then begin
         let dump title l =
           Printf.printf "-- %s --\n" title;
           List.iter (fun (k, v) -> Printf.printf "  %-28s %d\n" k v) l
         in
         dump "cold-phase diff" r.E.sm_cold;
         dump "warm-phase diff" r.E.sm_warm
       end
     in
     Cmdliner.Cmd.v
       (Cmdliner.Cmd.info "smoke"
          ~doc:
            "Small deterministic Flash-Lite run exercising the telemetry \
             stack (static + CGI, tracing armed)")
       Cmdliner.Term.(
         const run $ verbose_arg $ log_arg $ metrics_arg $ trace_arg));
    (let filter_arg =
       Cmdliner.Arg.(
         value
         & opt (some string) None
         & info [ "filter" ] ~docv:"PREFIX"
             ~doc:
               "Only show metrics whose dotted name starts with $(docv) \
                (e.g. $(b,cache.) or $(b,net.)).")
     in
     let report verbose directives filter =
       with_logging verbose directives;
       let r = E.smoke () in
       let keep k =
         match filter with
         | None -> true
         | Some p -> String.length k >= String.length p
                     && String.sub k 0 (String.length p) = p
       in
       let find l k =
         match List.assoc_opt k l with Some v -> v | None -> 0
       in
       let rows =
         List.filter_map
           (fun (k, v) ->
             let cold = find r.E.sm_cold k and warm = find r.E.sm_warm k in
             if keep k && (v <> 0 || cold <> 0 || warm <> 0) then
               Some
                 [
                   k;
                   string_of_int cold;
                   string_of_int warm;
                   string_of_int v;
                 ]
             else None)
           r.E.sm_metrics
       in
       Printf.printf "smoke run: %d requests; per-phase deltas and final \
                      snapshot\n" r.E.sm_requests;
       Iolite_util.Table.print
         ~header:[ "metric"; "cold"; "warm"; "final" ]
         ~rows;
       match r.E.sm_latency with
       | Some s ->
         Printf.printf
           "\nrequest latency: p50=%.4fs p90=%.4fs p99=%.4fs mean=%.4fs\n"
           s.Iolite_util.Stats.p50 s.Iolite_util.Stats.p90
           s.Iolite_util.Stats.p99 s.Iolite_util.Stats.mean
       | None -> ()
     in
     let report_cmd =
       Cmdliner.Cmd.v
         (Cmdliner.Cmd.info "report"
            ~doc:
              "Run the deterministic smoke workload and render its metrics \
               registry — per-phase (cold/warm) counter deltas against the \
               final snapshot — as an aligned table")
         Cmdliner.Term.(const report $ verbose_arg $ log_arg $ filter_arg)
     in
     Cmdliner.Cmd.group
       (Cmdliner.Cmd.info "obs" ~doc:"Observability reports")
       [ report_cmd ]);
  ]

let () =
  let info =
    Cmdliner.Cmd.info "iolite-cli" ~version:"1.0"
      ~doc:"IO-Lite (OSDI'99) reproduction experiments"
  in
  exit (Cmdliner.Cmd.eval (Cmdliner.Cmd.group info cmds))
